// Package sched is a fork-join work-stealing task scheduler built on
// the package deque deques — the application the paper itself names as
// the deques' destination ("deques ... currently used in load balancing
// algorithms", after Arora, Blumofe and Plaxton).
//
// Each worker goroutine owns one deque and treats it as a LIFO stack on
// the right end: the most recently spawned — smallest, hottest — task
// runs first, the locality argument of the work-stealing literature.
// Idle workers steal from the left end of a victim's deque, taking the
// oldest — largest — tasks and therefore stealing rarely.  The DCAS
// deque is what makes this split natural: unlike the specialized ABP
// deque, it permits unrestricted concurrent access to both ends, so
// thieves can take a *batch* from the left (half the victim's load, up
// to a cap) while the owner keeps working the right, and the external
// injector can be an ordinary deque used as a bounded MPMC FIFO.
//
// The deque implementation is pluggable (WithArrayDeques, WithDeques):
// the scheduler is written against the deque.Deque interface, so the
// array deque of Section 3, the list deques of Section 4 (all three
// reclamation variants), the native Chase–Lev work-stealing deque
// (WithChaseLev — no DCAS emulation, the throughput backend) and the
// mutex baseline all slot in — the sched experiment of dequebench
// races them against each other under identical scheduling load.
//
// Worker lifecycle is spin → yield → park: a worker that misses finds
// work a few times retries hot, then yields the processor, then parks
// on a per-worker channel after publishing itself on a lock-free idle
// stack (Treiber stack with an ABA tag).  The parking protocol is the
// Dekker shape — publish idleness, then re-check for work — paired
// with submitters and spawners who publish work, then check for idlers;
// the two checks are sequentially consistent atomics, so at least one
// side always observes the other and no wakeup is lost.
//
// Submission and shutdown linearize on a single "life" word holding a
// drain bit and the count of accepted-but-unfinished tasks: Submit
// joins via CAS (failing once the drain bit is set), tasks spawned by
// running tasks join via unconditional increment (their parent's count
// keeps the word live), and the decrement that moves the word to
// "draining, zero pending" wakes every parked worker so they observe
// quiescence and exit.  Shutdown(ctx) therefore drains: every task
// accepted before shutdown — and everything those tasks transitively
// spawn — runs exactly once before the workers stop.
package sched

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"dcasdeque/deque"
	"dcasdeque/internal/dcas"
	"dcasdeque/internal/metrics"
	"dcasdeque/internal/telemetry"
)

// Errors returned by submission.
var (
	// ErrShutdown is returned by Submit and TrySubmit after Shutdown has
	// been called.
	ErrShutdown = errors.New("sched: scheduler is shut down")
	// ErrSaturated is returned by TrySubmit when the injector queue is
	// full; Submit blocks instead (backpressure).
	ErrSaturated = errors.New("sched: injector saturated")
)

// Task is one unit of work.  The worker executing it is passed in so
// the task can Spawn subtasks onto that worker's own deque — the
// fork half of fork-join.
type Task func(w *Worker)

// Option configures New.
type Option func(*config)

type config struct {
	workers       int
	mkDeque       func(id int) deque.Deque[Task]
	mkInjector    func(capacity int) deque.Deque[Task]
	dequeCap      int
	injectorCap   int
	stealBatch    int
	spinRounds    int
	telemetry     bool
	telemetryName string
	latency       bool
	tracing       bool
}

func defaultConfig() config {
	return config{
		workers:     runtime.GOMAXPROCS(0),
		dequeCap:    8192,
		injectorCap: 1024,
		stealBatch:  16,
		spinRounds:  4,
	}
}

// WithWorkers sets the worker count (default GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithDeques supplies the per-worker deque factory, called once per
// worker id.  Any deque.Deque[Task] works; the prebuilt selectors
// below cover the in-repo implementations.
func WithDeques(mk func(id int) deque.Deque[Task]) Option {
	return func(c *config) { c.mkDeque = mk }
}

// WithArrayDeques selects bounded array deques (Section 3) for the
// workers, forwarding dopts (e.g. deque.WithEndLockDCAS).  This is the
// default, with capacity WithDequeCapacity.
func WithArrayDeques(dopts ...deque.Option) Option {
	return func(c *config) {
		cap := &c.dequeCap
		c.mkDeque = func(int) deque.Deque[Task] { return deque.NewArray[Task](*cap, dopts...) }
	}
}

// WithListDeques selects unbounded list deques (Section 4) for the
// workers, forwarding dopts (e.g. deque.WithDummyNodes, deque.WithLFRC).
func WithListDeques(dopts ...deque.Option) Option {
	return func(c *config) {
		c.mkDeque = func(int) deque.Deque[Task] { return deque.NewList[Task](dopts...) }
	}
}

// WithChaseLev selects the native single-CAS Chase–Lev work-stealing
// deques for the workers, forwarding dopts (e.g. deque.WithTelemetry).
// This is the backend the scheduler's access pattern was made for: each
// worker is the sole user of its deque's owner end (PushRight in Spawn
// and keep, PopRight in next — exactly the Chase–Lev owner contract),
// while thieves only PopLMany the left end, so the hot path runs on
// plain stores plus one CAS per steal batch with no DCAS emulation
// underneath.  The worker deques grow instead of overflowing
// (WithDequeCapacity does not apply); the injector stays a shared
// array deque, since external submitters are not the owner.
func WithChaseLev(dopts ...deque.Option) Option {
	return func(c *config) {
		c.mkDeque = func(int) deque.Deque[Task] { return deque.NewChaseLev[Task](dopts...) }
	}
}

// WithMutexDeques selects the blocking baseline deques for the workers.
func WithMutexDeques(dopts ...deque.Option) Option {
	return func(c *config) {
		cap := &c.dequeCap
		c.mkDeque = func(int) deque.Deque[Task] { return deque.NewMutex[Task](*cap, dopts...) }
	}
}

// WithDequeCapacity sets the per-worker deque capacity used by the
// bounded factories (default 8192).  A full worker deque is not an
// error — spawns overflow to the injector and then to inline execution.
func WithDequeCapacity(n int) Option {
	return func(c *config) { c.dequeCap = n }
}

// WithInjectorCapacity bounds the external submission queue (default
// 1024).  A full injector is backpressure: TrySubmit fails with
// ErrSaturated and Submit blocks.
func WithInjectorCapacity(n int) Option {
	return func(c *config) { c.injectorCap = n }
}

// WithInjector supplies the factory for the external submission queue,
// called once with the configured injector capacity (the default is a
// bounded array deque).  The scheduler uses the deque as a bounded MPMC
// FIFO: PushRight from submitters, PopLMany from workers.  Any push
// failure — ErrFull, or ErrMemoryBound from a deque built with
// deque.WithMemoryBound — is surfaced as ErrSaturated backpressure, so
// a memory-bounded injector turns a memory budget into admission
// control.
func WithInjector(mk func(capacity int) deque.Deque[Task]) Option {
	return func(c *config) { c.mkInjector = mk }
}

// WithStealBatch caps how many tasks one steal transfers (default 16).
// A thief takes half the victim's apparent load up to this cap.
func WithStealBatch(n int) Option {
	return func(c *config) { c.stealBatch = n }
}

// WithSpinRounds sets how many consecutive find-work misses a worker
// tolerates hot before it starts yielding, and then twice that before
// parking (default 4).
func WithSpinRounds(n int) Option {
	return func(c *config) { c.spinRounds = n }
}

// WithTelemetry enables the scheduler's per-worker counters
// (runs/spawns/steals/parks/wakes...), readable via Stats.
func WithTelemetry() Option {
	return func(c *config) { c.telemetry = true }
}

// WithTelemetryName enables telemetry and registers it under the given
// name with the process-wide exporter (expvar "dcasdeque" and
// deque.TelemetryHandler), like deque.WithTelemetryName.
func WithTelemetryName(name string) Option {
	return func(c *config) { c.telemetry = true; c.telemetryName = name }
}

// life-word layout: the top bit is the drain flag, the rest counts
// accepted-but-unfinished tasks.  The word's whole point is that
// "draining" and "pending == 0" are one atomic observation: the state
// life == drainBit is quiescence, the workers' exit condition.
const (
	drainBit    = uint64(1) << 63
	pendingMask = drainBit - 1
)

// paddedCount is an atomic counter alone on its false-sharing range, so
// the per-worker load estimates don't ping-pong a shared line.
type paddedCount struct {
	v atomic.Int64
	_ [dcas.FalseSharingRange - 8]byte
}

// Scheduler is a work-stealing executor.  Create with New; all methods
// are safe for concurrent use.
type Scheduler struct {
	cfg      config
	workers  []*Worker
	injector deque.Deque[Task]
	sizes    []paddedCount // sizes[i] ≈ len(worker i's deque), for victim selection
	injSize  atomic.Int64  // ≈ len(injector)
	//dequevet:packed pending:63 drain:1
	life     atomic.Uint64
	idle     idleStack
	sink     *telemetry.SchedSink
	lat      bool // sink non-nil with latency enabled: stamp lifecycles
	tracing  bool // WithTracing: emit runtime/trace tasks and regions
	unreg    func()
	wg       sync.WaitGroup
	done     chan struct{} // closed when every worker has exited
	stopping sync.Once
}

// New builds a scheduler and starts its workers.  The workers park
// immediately (there is no work yet) and cost nothing until the first
// Submit.  Call Shutdown to stop them.
func New(opts ...Option) *Scheduler {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.workers < 1 {
		panic("sched: worker count must be ≥ 1")
	}
	if cfg.stealBatch < 1 {
		cfg.stealBatch = 1
	}
	if cfg.mkDeque == nil {
		WithArrayDeques()(&cfg)
	}
	if cfg.mkInjector == nil {
		cfg.mkInjector = func(capacity int) deque.Deque[Task] { return deque.NewArray[Task](capacity) }
	}
	s := &Scheduler{
		cfg:      cfg,
		injector: cfg.mkInjector(cfg.injectorCap),
		sizes:    make([]paddedCount, cfg.workers),
		done:     make(chan struct{}),
	}
	if cfg.telemetry {
		s.sink = telemetry.NewSchedSink(cfg.workers)
		if cfg.latency {
			s.sink.EnableLatency()
			s.lat = true
		}
		if cfg.telemetryName != "" {
			s.unreg = telemetry.RegisterSched(cfg.telemetryName, s.sink)
		}
	}
	s.tracing = cfg.tracing
	s.idle.init(cfg.workers)
	s.workers = make([]*Worker, cfg.workers)
	for i := range s.workers {
		s.workers[i] = newWorker(s, i, cfg.mkDeque(i))
	}
	s.wg.Add(cfg.workers)
	for _, w := range s.workers {
		go w.loop()
	}
	return s
}

// NumWorkers reports the worker count.
func (s *Scheduler) NumWorkers() int { return len(s.workers) }

// note / noteN record telemetry when enabled — the deque cores' nil-
// check discipline: disabled telemetry costs one branch.
func (s *Scheduler) note(worker int, c telemetry.SchedCounter) {
	if s.sink != nil {
		s.sink.Inc(worker, c)
	}
}

func (s *Scheduler) noteN(worker int, c telemetry.SchedCounter, n uint64) {
	if s.sink != nil {
		s.sink.Add(worker, c, n)
	}
}

// acquire joins the life word as one pending task; it fails once the
// drain bit is set.  This CAS is where an external submission's
// accept-or-refuse decision linearizes against Shutdown.
func (s *Scheduler) acquire() bool {
	for {
		old := s.life.Load()
		if old&drainBit != 0 {
			return false
		}
		if s.life.CompareAndSwap(old, old+1) {
			return true
		}
	}
}

// release retires one pending task.  The decrement that lands the word
// on exactly drainBit is the moment of quiescence — it wakes every
// parked worker so they observe it and exit.
func (s *Scheduler) release() {
	if s.life.Add(^uint64(0)) == drainBit {
		s.wakeAll()
	}
}

// quiesced reports the exit condition: draining with nothing pending.
func (s *Scheduler) quiesced() bool { return s.life.Load() == drainBit }

// TrySubmit hands a task to the scheduler from outside; it returns
// ErrShutdown after Shutdown, or ErrSaturated when the bounded injector
// is full.  On success the task will run exactly once, on some worker.
func (s *Scheduler) TrySubmit(t Task) error {
	if t == nil {
		panic("sched: nil task")
	}
	if !s.acquire() {
		return ErrShutdown
	}
	t = s.stamp(t, telemetry.SchedSubmitRun)
	if err := s.injector.PushRight(t); err != nil {
		// Any push failure is backpressure: ErrFull from the bounded
		// array, or ErrMemoryBound from a memory-bounded injector
		// (WithInjector).  The release undoes acquire's pending count, so
		// a rejected submission leaves nothing behind for Shutdown to
		// drain.
		s.release()
		return ErrSaturated
	}
	// Publish the work (size increment), then look for a parked worker:
	// the mirror image of the parking protocol's publish-idle-then-check.
	s.injSize.Add(1) //dequevet:publish recheck=wakeOne the idle-stack check is the submitter's half of the Dekker handshake
	s.note(telemetry.SchedExternal, telemetry.SchedSubmits)
	s.wakeOne(telemetry.SchedExternal)
	return nil
}

// Submit is TrySubmit with blocking backpressure: a full injector makes
// it yield and retry until the task is accepted or the scheduler shuts
// down.
func (s *Scheduler) Submit(t Task) error {
	for {
		err := s.TrySubmit(t)
		if err != ErrSaturated { //nolint:errorlint — ErrSaturated is returned unwrapped
			return err
		}
		runtime.Gosched()
	}
}

// Shutdown stops accepting external submissions, drains every already-
// accepted task (and their transitive spawns), and waits for the
// workers to exit.  If ctx is cancelled first, Shutdown returns
// ctx.Err() but the drain continues in the background; Shutdown may be
// called again to resume waiting.  It is idempotent and safe to call
// concurrently.
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.stopping.Do(func() {
		// Raise the drain bit, observing the pending count of the same
		// instant: if nothing was pending right then, no release() will
		// ever run to announce quiescence, so announce it here.
		//
		// This stays a CAS loop instead of the one-line
		// `old := s.life.Or(drainBit)` on purpose: the module's floor
		// toolchain is go1.24.0, whose amd64 backend miscompiles the
		// VALUE-USING form of the atomic.Uint64.Or/And intrinsics
		// (golang.org/issue 71817, fixed in go1.24.1) — the returned old
		// value can be clobbered, here silently corrupting the
		// pending==0 quiescence test below.  The atomicvalue analyzer
		// now enforces this module-wide; when the floor toolchain
		// reaches go1.24.1, replace the loop with the Or form annotated
		// `//dequevet:atomicvalue-ok floor is go1.24.1` (the analyzer's
		// per-site allowlist) and delete this paragraph.
		old := s.life.Load()
		for !s.life.CompareAndSwap(old, old|drainBit) {
			old = s.life.Load()
		}
		if old&pendingMask == 0 {
			s.wakeAll()
		}
		go func() {
			s.wg.Wait()
			if s.unreg != nil {
				s.unreg()
			}
			close(s.done)
		}()
	})
	select {
	case <-s.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// wakeOne unparks one idle worker, if any; from attributes the wake.
func (s *Scheduler) wakeOne(from int) {
	if id, ok := s.idle.pop(); ok {
		s.note(from, telemetry.SchedWakes)
		s.workers[id].wake <- struct{}{}
	}
}

// wakeAll unparks every idle worker (quiescence announcement).
func (s *Scheduler) wakeAll() {
	for {
		id, ok := s.idle.pop()
		if !ok {
			return
		}
		s.note(telemetry.SchedExternal, telemetry.SchedWakes)
		s.workers[id].wake <- struct{}{}
	}
}

// workAvailable is the parking recheck: any apparent work anywhere?
// The size estimates are conservative in the direction that matters —
// a task is pushed before its size increment is published, but the
// push-then-increment pair is ordered before the pusher's idle-stack
// check, so a parker that misses the increment is instead seen on the
// stack and woken (see the package comment's Dekker argument).
func (s *Scheduler) workAvailable() bool {
	if s.injSize.Load() > 0 {
		return true
	}
	for i := range s.sizes {
		if s.sizes[i].v.Load() > 0 {
			return true
		}
	}
	return false
}

// Stats returns the scheduler's telemetry snapshot; ok is false unless
// it was built with WithTelemetry or WithTelemetryName.
func (s *Scheduler) Stats() (Stats, bool) {
	if s.sink == nil {
		return Stats{}, false
	}
	sn := s.sink.Snapshot()
	st := Stats{
		Workers:  make([]WorkerCounts, len(sn.Workers)),
		External: WorkerCounts(sn.External),
		Total:    WorkerCounts(sn.Total),
	}
	for i, c := range sn.Workers {
		st.Workers[i] = WorkerCounts(c)
	}
	if l := sn.Latencies; l != nil {
		st.Latencies = &Latencies{
			SubmitRun: histStats(l.SubmitRun),
			StealRun:  histStats(l.StealRun),
			ParkWake:  histStats(l.ParkWake),
		}
	}
	return st, true
}

func histStats(h metrics.HistogramSnapshot) deque.HistogramStats {
	return deque.HistogramStats{
		N: h.N, Sum: h.Sum, Min: h.Min, Max: h.Max,
		P50: h.P50, P90: h.P90, P99: h.P99, P999: h.P999,
	}
}

// WorkerCounts is one worker's counters (External: events raised
// outside any worker, i.e. submissions and their wakeups).
type WorkerCounts struct {
	Runs       uint64
	Spawns     uint64
	Submits    uint64
	Steals     uint64
	Stolen     uint64
	StealFails uint64
	Parks      uint64
	Wakes      uint64
}

// Latencies are the scheduler's task-lifecycle latency summaries
// (nanoseconds): how long tasks waited between submit/spawn and first
// run, between steal transfer and run, and how long workers slept
// between park and wake.
type Latencies struct {
	SubmitRun deque.HistogramStats
	StealRun  deque.HistogramStats
	ParkWake  deque.HistogramStats
}

// Stats is a point-in-time scheduler telemetry snapshot.
type Stats struct {
	Workers  []WorkerCounts
	External WorkerCounts
	Total    WorkerCounts
	// Latencies is present only for schedulers built with WithLatency.
	Latencies *Latencies
}
