package sched

// Task-lifecycle observability: latency stamps and runtime/trace
// annotations.
//
// The scheduler's interesting latencies are intervals between events on
// different goroutines — a submission stamped by the submitter and
// first run by whichever worker picks it up; a steal transfer stamped
// by the thief and run after the keep-batch drains.  The stamp is
// carried by wrapping the Task in a closure at the earlier event; the
// later event (the wrapped task's invocation, always on a worker)
// records the interval into that worker's single-writer histogram lane.
// Wrapping costs one closure allocation per stamped task, paid only
// when WithLatency or WithTracing is on; disabled, stamp returns its
// argument untouched and the hot path allocates nothing.
//
// With WithTracing, the same wrap points emit runtime/trace user
// annotations: each submitted/spawned/stolen task becomes a trace.Task
// (named by its lifecycle kind) whose execution runs inside a
// "sched.run" region, and steal sweeps and parks become regions on the
// worker's goroutine — so `go tool trace` renders the scheduler's
// behaviour with no extra tooling.  Annotations are dropped at
// runtime when no trace is being collected (trace.IsEnabled), making
// WithTracing safe to leave on in binaries that only sometimes trace.

import (
	"context"
	"runtime/trace"

	"dcasdeque/internal/metrics"
	"dcasdeque/internal/telemetry"
)

// WithLatency enables task-lifecycle latency histograms on top of the
// counters (implying WithTelemetry): submit→first-run, steal→run and
// park→wake intervals, per worker, readable through Stats().Latencies
// and the exporters.  Costs one closure allocation plus two clock reads
// per submitted/spawned/stolen task.
func WithLatency() Option {
	return func(c *config) {
		c.telemetry = true
		c.latency = true
	}
}

// WithTracing emits runtime/trace user tasks and regions for the
// scheduler's lifecycle events: submitted, spawned and stolen tasks
// become trace tasks running inside "sched.run" regions; steal sweeps
// and parks become regions.  Annotations are suppressed while no trace
// is active, so the steady-state cost is one trace.IsEnabled check per
// wrap point.
func WithTracing() Option {
	return func(c *config) { c.tracing = true }
}

// stamp wraps t so that the interval from now (the submit, spawn or
// steal event) to the moment a worker first runs it is recorded under
// kind — and, when tracing, so the task's life shows up as a
// trace.Task.  Returns t untouched when neither feature is on.  A task
// may be stamped more than once (submitted, then stolen): the wraps
// nest, and each records its own interval.
func (s *Scheduler) stamp(t Task, kind telemetry.SchedLatency) Task {
	tracing := s.tracing && trace.IsEnabled()
	if !s.lat && !tracing {
		return t
	}
	var start int64
	if s.lat {
		start = metrics.Nanotime()
	}
	var ctx context.Context
	var tt *trace.Task
	if tracing {
		ctx, tt = trace.NewTask(context.Background(), "sched."+kind.String())
	}
	return func(w *Worker) {
		if start != 0 {
			w.s.sink.Latency(w.id, kind, uint64(metrics.Nanotime()-start))
		}
		if tt != nil {
			trace.WithRegion(ctx, "sched.run", func() { t(w) })
			tt.End()
			return
		}
		t(w)
	}
}

// stampBatch stamps every task of a freshly stolen batch in place.
func (s *Scheduler) stampBatch(ts []Task, kind telemetry.SchedLatency) {
	if !s.lat && !(s.tracing && trace.IsEnabled()) {
		return
	}
	for i := range ts {
		ts[i] = s.stamp(ts[i], kind)
	}
}

// region opens a named trace region when tracing is on and a trace is
// being collected; nil otherwise (callers guard the End).
func (s *Scheduler) region(name string) *trace.Region {
	if s.tracing && trace.IsEnabled() {
		return trace.StartRegion(context.Background(), name)
	}
	return nil
}

// parkWait blocks for the worker's wake token, recording the park→wake
// interval (and a "sched.park" region) when enabled.  The stamp spans
// exactly the blocked receive: the idle-stack publish and Dekker
// recheck before it are awake work, not sleep.
func (w *Worker) parkWait() {
	s := w.s
	tracing := s.tracing && trace.IsEnabled()
	if !s.lat && !tracing {
		<-w.wake
		return
	}
	var start int64
	if s.lat {
		start = metrics.Nanotime()
	}
	var reg *trace.Region
	if tracing {
		reg = trace.StartRegion(context.Background(), "sched.park")
	}
	<-w.wake
	if reg != nil {
		reg.End()
	}
	if start != 0 {
		s.sink.Latency(w.id, telemetry.SchedParkWake, uint64(metrics.Nanotime()-start))
	}
}
