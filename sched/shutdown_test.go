package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dcasdeque/deque"
)

// TestSubmitAfterShutdown: once Shutdown is called, both submission
// paths refuse with ErrShutdown — even while the drain is ongoing.
func TestSubmitAfterShutdown(t *testing.T) {
	s := New(WithWorkers(2))
	gate := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	if err := s.Submit(func(*Worker) { <-gate; wg.Done() }); err != nil {
		t.Fatal(err)
	}
	// Start the drain but do not let it finish: the in-flight task holds
	// the life word above quiescence.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown with task in flight = %v, want deadline exceeded", err)
	}
	if err := s.Submit(func(*Worker) {}); !errors.Is(err, ErrShutdown) {
		t.Fatalf("Submit after Shutdown = %v, want ErrShutdown", err)
	}
	if err := s.TrySubmit(func(*Worker) {}); !errors.Is(err, ErrShutdown) {
		t.Fatalf("TrySubmit after Shutdown = %v, want ErrShutdown", err)
	}
	close(gate)
	wg.Wait()
	shutdownOK(t, s)
}

// TestShutdownHonorsContext: a cancelled context aborts the wait (not
// the drain), and a later Shutdown call can resume waiting.
func TestShutdownHonorsContext(t *testing.T) {
	s := New(WithWorkers(2))
	gate := make(chan struct{})
	if err := s.Submit(func(*Worker) { <-gate }); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: Shutdown must return immediately
	if err := s.Shutdown(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Shutdown(cancelled ctx) = %v, want context.Canceled", err)
	}
	close(gate)
	shutdownOK(t, s) // the drain continued in the background
}

// TestShutdownDrainsPending: tasks accepted before Shutdown — and
// their transitive spawns — all run before Shutdown returns.
func TestShutdownDrainsPending(t *testing.T) {
	s := New(WithWorkers(4))
	var ran atomic.Int64
	const n = 500
	for i := 0; i < n; i++ {
		if err := s.Submit(func(w *Worker) {
			w.Spawn(func(*Worker) { ran.Add(1) })
			ran.Add(1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	shutdownOK(t, s) // no external join: Shutdown *is* the join
	if got := ran.Load(); got != 2*n {
		t.Fatalf("after Shutdown, ran = %d, want %d", got, 2*n)
	}
}

// TestParkedWorkerWokenByFinalDrain: workers with nothing to do park;
// the last task's completion (the release that lands the life word on
// quiescence) must wake them so they exit and Shutdown returns.  The
// single long-running task guarantees the other workers are parked
// when the drain completes.
func TestParkedWorkerWokenByFinalDrain(t *testing.T) {
	s := New(WithWorkers(4), WithTelemetry())
	release := make(chan struct{})
	if err := s.Submit(func(*Worker) { <-release }); err != nil {
		t.Fatal(err)
	}
	// Give the three idle workers time to run out of spin and park.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, _ := s.Stats()
		if st.Total.Parks >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("workers never parked: %+v", st.Total)
		}
		time.Sleep(time.Millisecond)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(release) // the final drain happens while workers are parked
	}()
	shutdownOK(t, s)
}

// TestShutdownIdleScheduler: shutting down with nothing ever submitted
// must wake the (all parked) workers immediately.
func TestShutdownIdleScheduler(t *testing.T) {
	s := New(WithWorkers(4))
	time.Sleep(10 * time.Millisecond) // let the workers park
	shutdownOK(t, s)
}

// TestShutdownRacesMemoryBoundRejects: submissions racing Shutdown
// through a memory-bounded injector (WithInjector + deque.WithMemoryBound)
// must not leak pending tasks.  A rejected TrySubmit maps ErrMemoryBound
// to ErrSaturated AND undoes its pending-count acquire, so the life word
// only counts tasks the injector actually holds — if a rejection leaked
// its acquire, Shutdown would wait forever for a task that doesn't
// exist; if it leaked the task, accepted > ran.
func TestShutdownRacesMemoryBoundRejects(t *testing.T) {
	s := New(WithWorkers(2), WithInjector(func(capacity int) deque.Deque[Task] {
		// Tiny budget (~128 tasks), far under the default capacity: the
		// memory bound, not ErrFull, is what rejects.
		return deque.NewArray[Task](capacity, deque.WithMemoryBound(2<<10))
	}))

	// Pin both workers so the injector fills to its budget and the
	// ErrMemoryBound→ErrSaturated path demonstrably fires.
	gate := make(chan struct{})
	for i := 0; i < 2; i++ {
		if err := s.Submit(func(*Worker) { <-gate }); err != nil {
			t.Fatal(err)
		}
	}
	var accepted, ran atomic.Int64
	task := func(*Worker) { ran.Add(1) }
	saturated := false
	for i := 0; i < 1<<16; i++ {
		switch err := s.TrySubmit(task); {
		case err == nil:
			accepted.Add(1)
		case errors.Is(err, ErrSaturated):
			saturated = true
		default:
			t.Fatalf("TrySubmit: %v", err)
		}
		if saturated {
			break
		}
	}
	if !saturated {
		t.Fatal("memory-bounded injector never surfaced ErrSaturated")
	}

	// Race more submissions (most rejected at the bound) against the
	// release of the workers and the Shutdown drain.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				switch err := s.TrySubmit(task); {
				case err == nil:
					accepted.Add(1)
				case errors.Is(err, ErrShutdown):
					return
				case errors.Is(err, ErrSaturated):
					// rejected at the bound: must leave nothing pending
				default:
					t.Errorf("TrySubmit: %v", err)
					return
				}
			}
		}()
	}
	close(gate)
	shutdownOK(t, s) // would hang if a rejection leaked a pending count
	wg.Wait()
	if a, r := accepted.Load(), ran.Load(); a != r {
		t.Fatalf("accepted %d submissions but ran %d — pending tasks leaked across Shutdown", a, r)
	}
}

// TestShutdownConcurrent: many goroutines racing Shutdown all get nil
// once the drain completes.
func TestShutdownConcurrent(t *testing.T) {
	s := New(WithWorkers(2))
	for i := 0; i < 100; i++ {
		if err := s.Submit(func(*Worker) {}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			errs[i] = s.Shutdown(ctx)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent Shutdown %d: %v", i, err)
		}
	}
}
