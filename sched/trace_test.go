package sched

import (
	"os"
	"runtime/trace"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLatencyStats: WithLatency surfaces lifecycle histograms through
// Stats, with submit→run covering every submitted and spawned task.
func TestLatencyStats(t *testing.T) {
	s := New(WithWorkers(4), WithLatency())
	const n = 500
	var wg sync.WaitGroup
	wg.Add(n)
	var spawned atomic.Uint64
	for i := 0; i < n; i++ {
		if err := s.Submit(func(w *Worker) {
			defer wg.Done()
			if spawned.Add(1) <= 50 {
				wg.Add(1)
				w.Spawn(func(*Worker) { wg.Done() })
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	shutdownOK(t, s)
	st, ok := s.Stats()
	if !ok {
		t.Fatal("WithLatency implies telemetry but Stats not ok")
	}
	l := st.Latencies
	if l == nil {
		t.Fatal("Stats.Latencies nil with WithLatency")
	}
	// Every submitted and spawned task was stamped; a task may be stamped
	// again when stolen, so submit→run records at least one sample per
	// task (n submits + 50 spawns).
	if l.SubmitRun.N < n+50 {
		t.Fatalf("submit_run samples = %d, want ≥ %d", l.SubmitRun.N, n+50)
	}
	if l.SubmitRun.Max < l.SubmitRun.Min || l.SubmitRun.Sum == 0 {
		t.Fatalf("degenerate submit_run histogram: %+v", l.SubmitRun)
	}
	if l.SubmitRun.P50 == 0 || l.SubmitRun.P999 < l.SubmitRun.P50 {
		t.Fatalf("submit_run quantiles: %+v", l.SubmitRun)
	}
	// Steal and park samples depend on scheduling luck; the structural
	// contract is consistency, not presence.
	if l.StealRun.N > 0 && st.Total.Stolen == 0 {
		t.Fatal("steal_run samples without recorded steals")
	}
	if l.ParkWake.N > 0 && st.Total.Parks == 0 {
		t.Fatal("park_wake samples without recorded parks")
	}
}

// TestLatencyAbsentWithoutOption: plain WithTelemetry keeps the latency
// surface off.
func TestLatencyAbsentWithoutOption(t *testing.T) {
	s := New(WithWorkers(2), WithTelemetry())
	var wg sync.WaitGroup
	wg.Add(1)
	if err := s.Submit(func(*Worker) { wg.Done() }); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	shutdownOK(t, s)
	st, _ := s.Stats()
	if st.Latencies != nil {
		t.Fatal("Stats.Latencies present without WithLatency")
	}
}

// TestParkWakeRecorded forces a park (idle scheduler, then late work)
// and checks the park→wake interval lands in the histogram.
func TestParkWakeRecorded(t *testing.T) {
	s := New(WithWorkers(2), WithLatency(), WithSpinRounds(1))
	// Let the workers go idle and park.
	var warm sync.WaitGroup
	warm.Add(1)
	if err := s.Submit(func(*Worker) { warm.Done() }); err != nil {
		t.Fatal(err)
	}
	warm.Wait()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, _ := s.Stats()
		if st.Total.Parks > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Skip("workers never parked; nothing to measure")
		}
		time.Sleep(time.Millisecond)
	}
	// Waking them — by submitting — records park→wake for each released
	// worker.
	var wg sync.WaitGroup
	wg.Add(1)
	if err := s.Submit(func(*Worker) { wg.Done() }); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	shutdownOK(t, s) // the final drain broadcast wakes any remaining parkers
	st, _ := s.Stats()
	if st.Latencies == nil || st.Latencies.ParkWake.N == 0 {
		t.Fatalf("no park_wake samples after forced park/wake: %+v", st.Latencies)
	}
}

// TestTracingSmoke runs a fork-join workload under WithTracing with a
// live trace collector: the annotations must not corrupt the trace
// (trace.Stop flushes and validates buffers) or perturb execution.
func TestTracingSmoke(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "sched-trace-*.out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.Start(f); err != nil {
		t.Skipf("trace.Start: %v (already tracing?)", err)
	}
	s := New(WithWorkers(4), WithLatency(), WithTracing())
	var wg sync.WaitGroup
	var ran, forks atomic.Int64
	for i := 0; i < 200; i++ {
		wg.Add(1)
		if err := s.Submit(func(w *Worker) {
			defer wg.Done()
			ran.Add(1)
			if forks.Add(1) <= 20 {
				wg.Add(1)
				w.Spawn(func(*Worker) { ran.Add(1); wg.Done() })
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	shutdownOK(t, s)
	trace.Stop()
	if got := ran.Load(); got != 220 {
		t.Fatalf("ran %d tasks, want 220", got)
	}
	fi, err := os.Stat(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Fatal("trace file empty: annotations emitted nothing")
	}
}

// TestTracingDisabledNoWrap: without WithLatency and with no active
// trace, stamp must return the task untouched — the zero-overhead
// contract the hot path depends on.
func TestTracingDisabledNoWrap(t *testing.T) {
	if trace.IsEnabled() {
		t.Skip("a trace is active; the wrap is supposed to engage")
	}
	s := New(WithWorkers(1), WithTracing())
	defer shutdownOK(t, s)
	called := false
	task := Task(func(*Worker) { called = true })
	got := s.stamp(task, 0)
	// Function values are not comparable, but an unwrapped return invokes
	// the original directly; a wrapped one would too — so compare the
	// one observable difference: stamp with nothing enabled must not
	// allocate a closure.  AllocsPerRun isolates that.
	allocs := testing.AllocsPerRun(100, func() {
		_ = s.stamp(task, 0)
	})
	if allocs != 0 {
		t.Fatalf("stamp allocates %v per call with everything disabled", allocs)
	}
	got(nil)
	if !called {
		t.Fatal("stamped task did not run the original")
	}
}
