package stress

import (
	"testing"
	"time"
)

// TestRandomizedRuns is the bounded in-tree slice of the certification
// the dequestress -sched command runs at scale (10k+ runs): every
// seed's scenario must conserve its task count and beat the watchdog.
func TestRandomizedRuns(t *testing.T) {
	runs := 150
	if testing.Short() {
		runs = 40
	}
	for seed := 0; seed < runs; seed++ {
		st, err := Run(Config{Seed: uint64(seed), Timeout: time.Minute})
		if err != nil {
			t.Fatalf("seed %d (workers=%d backend=%s submits=%d drained=%v): %v",
				seed, st.Workers, st.Backend, st.Submits, st.Drained, err)
		}
		if st.Runs != uint64(st.Submits)+st.Spawned {
			t.Fatalf("seed %d: Stats inconsistent: %+v", seed, st)
		}
	}
}

// TestDeterministicScenario: equal seeds produce equal scenarios (the
// reproducibility promise failures are reported in terms of).
func TestDeterministicScenario(t *testing.T) {
	a, err := Run(Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.Workers != b.Workers || a.Backend != b.Backend ||
		a.Submits != b.Submits || a.Spawned != b.Spawned || a.Drained != b.Drained {
		t.Fatalf("seed 42 scenarios differ:\n%+v\n%+v", a, b)
	}
}
