// Package stress is the scheduler's randomized stress harness — the
// sched counterpart of internal/verify/stress for the deques.  One Run
// is one scheduler lifetime with every knob randomized from the seed:
// worker count, deque backend and capacity, injector capacity, steal
// batch, spawn-tree shape, and the join mode.  It checks the two
// properties the scheduler promises:
//
//   - Task-count conservation: every accepted task — submitted or
//     spawned — runs exactly once (counted by the tasks themselves),
//     and tasks refused after shutdown never run.
//   - No lost wakeups: the run completes within a watchdog budget.  A
//     lost wakeup strands work while workers sleep, so the computation
//     hangs; the watchdog converts that hang into a failure instead of
//     a stuck process.
//
// The two join modes split the second property: "join" waits for the
// computation via a WaitGroup while the scheduler stays up (exercising
// park/wake under steady submission), "drain" calls Shutdown
// immediately after the last submit and relies on the drain to be the
// join (exercising the quiescence announcement path).
package stress

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"dcasdeque/deque"
	"dcasdeque/sched"
)

// Config parameterizes Run.  Only the seed is required; every other
// field has a working default.
type Config struct {
	// Seed drives all randomization; equal seeds give equal scenarios.
	Seed uint64
	// Timeout is the no-lost-wakeup watchdog per run (default 30s).
	Timeout time.Duration
}

// Stats describes the scenario one Run executed.
type Stats struct {
	Workers int
	Backend string
	Submits int
	Spawned uint64
	Runs    uint64
	Drained bool // joined by Shutdown's drain instead of a WaitGroup
}

// backendNames lists the deque implementations runs rotate through.
var backendNames = []string{"array", "list", "list-dummy", "list-lfrc", "chaselev", "mutex"}

func backendOption(name string) sched.Option {
	switch name {
	case "array":
		return sched.WithArrayDeques()
	case "list":
		return sched.WithListDeques()
	case "list-dummy":
		return sched.WithListDeques(deque.WithDummyNodes())
	case "list-lfrc":
		return sched.WithListDeques(deque.WithLFRC())
	case "chaselev":
		return sched.WithChaseLev()
	default:
		return sched.WithMutexDeques()
	}
}

// Run executes one randomized scheduler lifetime and verifies
// conservation; a nil error means every accepted task ran exactly once
// and the run beat the watchdog.
func Run(cfg Config) (Stats, error) {
	if cfg.Timeout == 0 {
		cfg.Timeout = 30 * time.Second
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x5ced))

	st := Stats{
		Workers: 1 + rng.IntN(8),
		Backend: backendNames[rng.IntN(len(backendNames))],
		Submits: 1 + rng.IntN(64),
		Drained: rng.IntN(2) == 0,
	}
	opts := []sched.Option{
		sched.WithWorkers(st.Workers),
		backendOption(st.Backend),
		// Small capacities on purpose: the overflow paths (spawn →
		// injector → inline) and Submit's backpressure must hold
		// conservation too.
		sched.WithDequeCapacity(1 + rng.IntN(64)),
		sched.WithInjectorCapacity(1 + rng.IntN(64)),
		sched.WithStealBatch(1 + rng.IntN(32)),
		sched.WithSpinRounds(1 + rng.IntN(8)),
	}

	var (
		expected atomic.Uint64 // tasks accepted: submits + spawns
		ran      atomic.Uint64 // tasks executed
		wg       sync.WaitGroup
	)
	// Per-task randomness must not share the harness rng (tasks run
	// concurrently); derive fixed shape parameters instead.
	branch := 1 + rng.IntN(3)
	depth := rng.IntN(6)
	leafSpin := rng.IntN(200)

	var node func(depth int) sched.Task
	node = func(depth int) sched.Task {
		return func(w *sched.Worker) {
			defer wg.Done()
			ran.Add(1)
			if depth == 0 {
				for i := 0; i < leafSpin; i++ {
					_ = i // simulate a little work
				}
				return
			}
			for i := 0; i < branch; i++ {
				expected.Add(1)
				wg.Add(1)
				w.Spawn(node(depth - 1))
			}
		}
	}

	s := sched.New(opts...)
	for i := 0; i < st.Submits; i++ {
		expected.Add(1)
		wg.Add(1)
		if err := s.Submit(node(depth)); err != nil {
			return st, fmt.Errorf("submit %d: %v", i, err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.Timeout)
	defer cancel()
	if st.Drained {
		// Shutdown is the join: it must not return before the spawn trees
		// finish.
		if err := s.Shutdown(ctx); err != nil {
			return st, fmt.Errorf("drain-join: %v (lost wakeup or stuck drain; ran %d/%d)",
				err, ran.Load(), expected.Load())
		}
	} else {
		joined := make(chan struct{})
		go func() { wg.Wait(); close(joined) }()
		select {
		case <-joined:
		case <-ctx.Done():
			return st, fmt.Errorf("join: watchdog expired (lost wakeup; ran %d/%d)",
				ran.Load(), expected.Load())
		}
		if err := s.Shutdown(ctx); err != nil {
			return st, fmt.Errorf("shutdown after join: %v", err)
		}
	}

	// Post-shutdown refusals must not run: the counters below would
	// diverge if a refused task ever executed.
	if err := s.TrySubmit(func(*sched.Worker) { ran.Add(1) }); err != sched.ErrShutdown {
		return st, fmt.Errorf("TrySubmit after shutdown = %v, want ErrShutdown", err)
	}

	st.Runs = ran.Load()
	st.Spawned = expected.Load() - uint64(st.Submits)
	if st.Runs != expected.Load() {
		return st, fmt.Errorf("conservation violated: accepted %d tasks, ran %d",
			expected.Load(), st.Runs)
	}
	return st, nil
}
