package sched

import "sync/atomic"

// idleStack is the global set of parked workers: a lock-free Treiber
// stack over worker ids.  The head word packs a 32-bit ABA tag above a
// 32-bit id+1 (0 = empty); every successful CAS bumps the tag, so a
// pop that raced a pop/re-push of the same worker fails instead of
// installing a stale successor.  next[] is the intrusive successor
// table — a worker is on the stack at most once, so one slot per
// worker suffices, and slots are only trusted after the tagged CAS
// validates them.
//
// LIFO is the point, not an accident: the most recently parked worker
// is the one whose stack and deque metadata are still warm, so it is
// the one a wakeup should restart.
type idleStack struct {
	//dequevet:packed id:32 tag:32
	head atomic.Uint64
	next []atomic.Uint32
}

// tagShift is the ABA tag's offset in the head word (checked against
// the //dequevet:packed declaration above by the stampwidth analyzer).
const tagShift = 32

func (st *idleStack) init(workers int) {
	st.next = make([]atomic.Uint32, workers)
}

// push adds a worker id.  The caller must not push an id that is
// already on the stack (the parking protocol guarantees this: a worker
// pushes only itself, and only after consuming its previous wake).
func (st *idleStack) push(id int) {
	for {
		old := st.head.Load()
		st.next[id].Store(uint32(old))
		if st.head.CompareAndSwap(old, (old>>tagShift+1)<<tagShift|uint64(id+1)) {
			return
		}
	}
}

// pop removes and returns the most recently pushed id, if any.
func (st *idleStack) pop() (int, bool) {
	for {
		old := st.head.Load()
		top := uint32(old)
		if top == 0 {
			return 0, false
		}
		succ := st.next[top-1].Load()
		if st.head.CompareAndSwap(old, (old>>tagShift+1)<<tagShift|uint64(succ)) {
			return int(top - 1), true
		}
	}
}
