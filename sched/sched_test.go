package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dcasdeque/deque"
)

// shutdownOK drains s with a generous deadline and fails the test on
// error — the common epilogue.
func shutdownOK(t *testing.T, s *Scheduler) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// backends enumerates the deque implementations the scheduler must be
// agnostic over.
func backends() map[string]Option {
	return map[string]Option{
		"array":      WithArrayDeques(),
		"list":       WithListDeques(),
		"list-dummy": WithListDeques(deque.WithDummyNodes()),
		"list-lfrc":  WithListDeques(deque.WithLFRC()),
		"mutex":      WithMutexDeques(),
		"chaselev":   WithChaseLev(),
	}
}

// TestSubmitRunsEveryTask is the basic conservation contract: every
// submitted task runs exactly once, on every backend.
func TestSubmitRunsEveryTask(t *testing.T) {
	for name, backend := range backends() {
		t.Run(name, func(t *testing.T) {
			s := New(WithWorkers(4), backend, WithTelemetry())
			const n = 2000
			var ran [n]atomic.Int32
			var wg sync.WaitGroup
			wg.Add(n)
			for i := 0; i < n; i++ {
				i := i
				if err := s.Submit(func(*Worker) {
					ran[i].Add(1)
					wg.Done()
				}); err != nil {
					t.Fatalf("Submit(%d): %v", i, err)
				}
			}
			wg.Wait()
			shutdownOK(t, s)
			for i := range ran {
				if c := ran[i].Load(); c != 1 {
					t.Fatalf("task %d ran %d times", i, c)
				}
			}
			st, ok := s.Stats()
			if !ok {
				t.Fatal("telemetry enabled but Stats not ok")
			}
			if st.Total.Runs != n {
				t.Fatalf("Total.Runs = %d, want %d", st.Total.Runs, n)
			}
			if st.Total.Submits != n {
				t.Fatalf("Total.Submits = %d, want %d", st.Total.Submits, n)
			}
		})
	}
}

// TestForkJoinFib exercises Spawn: the classic exponential fork-join
// fib, result assembled through leaf counting.
func TestForkJoinFib(t *testing.T) {
	for name, backend := range backends() {
		t.Run(name, func(t *testing.T) {
			s := New(WithWorkers(4), backend)
			var leaves atomic.Uint64
			var wg sync.WaitGroup
			var fib func(n int) Task
			fib = func(n int) Task {
				return func(w *Worker) {
					defer wg.Done()
					if n < 2 {
						if n == 1 {
							leaves.Add(1)
						}
						return
					}
					wg.Add(2)
					w.Spawn(fib(n - 1))
					w.Spawn(fib(n - 2))
				}
			}
			wg.Add(1)
			if err := s.Submit(fib(20)); err != nil {
				t.Fatal(err)
			}
			wg.Wait()
			shutdownOK(t, s)
			// fib(20) counted as fib(1) leaves = 6765.
			if got := leaves.Load(); got != 6765 {
				t.Fatalf("fib leaves = %d, want 6765", got)
			}
		})
	}
}

// TestSingleWorker: degenerate configuration, no victims to steal from.
func TestSingleWorker(t *testing.T) {
	s := New(WithWorkers(1))
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		if err := s.Submit(func(w *Worker) {
			wg.Add(1)
			w.Spawn(func(*Worker) { n.Add(1); wg.Done() })
			n.Add(1)
			wg.Done()
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	shutdownOK(t, s)
	if n.Load() != 200 {
		t.Fatalf("ran %d tasks, want 200", n.Load())
	}
}

// TestBackpressure: a tiny injector saturates; TrySubmit must refuse
// with ErrSaturated while Submit blocks until space opens.
func TestBackpressure(t *testing.T) {
	s := New(WithWorkers(1), WithInjectorCapacity(2))
	gate := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	// Occupy the single worker, and only proceed once it is provably
	// inside the task — otherwise it would drain whatever we pile into
	// the injector onto its own deque, unsaturating it.
	wg.Add(1)
	if err := s.Submit(func(*Worker) { close(started); <-gate; wg.Done() }); err != nil {
		t.Fatal(err)
	}
	<-started
	// Fill the injector; with the worker blocked, capacity 2 must refuse
	// within 2 accepts.
	saturated := false
	for i := 0; i < 3 && !saturated; i++ {
		err := s.TrySubmit(func(*Worker) { wg.Done() })
		switch err {
		case nil:
			wg.Add(1)
		case ErrSaturated:
			saturated = true
		default:
			t.Fatalf("TrySubmit: %v", err)
		}
	}
	if !saturated {
		t.Fatal("TrySubmit never saturated a capacity-2 injector")
	}
	// Submit must block now, then complete once the worker drains.
	unblocked := make(chan error, 1)
	go func() {
		wg.Add(1)
		unblocked <- s.Submit(func(*Worker) { wg.Done() })
	}()
	select {
	case err := <-unblocked:
		t.Fatalf("Submit returned %v against a saturated injector", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	if err := <-unblocked; err != nil {
		t.Fatalf("Submit after drain: %v", err)
	}
	wg.Wait()
	shutdownOK(t, s)
}

// TestStealsHappen: one worker seeds a deep spawn tree; with telemetry
// on, the other workers must show successful steals.
func TestStealsHappen(t *testing.T) {
	s := New(WithWorkers(4), WithTelemetry())
	var wg sync.WaitGroup
	var grow func(depth int) Task
	grow = func(depth int) Task {
		return func(w *Worker) {
			defer wg.Done()
			if depth == 0 {
				time.Sleep(10 * time.Microsecond) // give thieves a window
				return
			}
			wg.Add(2)
			w.Spawn(grow(depth - 1))
			w.Spawn(grow(depth - 1))
		}
	}
	wg.Add(1)
	if err := s.Submit(grow(12)); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	shutdownOK(t, s)
	st, _ := s.Stats()
	if st.Total.Steals == 0 {
		t.Fatalf("no steals across 4 workers on a 2^12 spawn tree: %+v", st.Total)
	}
	if st.Total.Stolen < st.Total.Steals {
		t.Fatalf("Stolen %d < Steals %d", st.Total.Stolen, st.Total.Steals)
	}
}

// TestDequeOverflowInline: per-worker deques of capacity 1 force the
// spawn overflow path (injector, then inline execution); conservation
// must hold regardless.
func TestDequeOverflowInline(t *testing.T) {
	s := New(WithWorkers(2), WithDequeCapacity(1), WithInjectorCapacity(1))
	var n atomic.Int64
	var wg sync.WaitGroup
	var grow func(depth int) Task
	grow = func(depth int) Task {
		return func(w *Worker) {
			defer wg.Done()
			n.Add(1)
			if depth == 0 {
				return
			}
			wg.Add(2)
			w.Spawn(grow(depth - 1))
			w.Spawn(grow(depth - 1))
		}
	}
	wg.Add(1)
	if err := s.Submit(grow(10)); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	shutdownOK(t, s)
	if want := int64(1<<11 - 1); n.Load() != want {
		t.Fatalf("ran %d tasks, want %d", n.Load(), want)
	}
}

// TestKeepWakeParked is the lost-wakeup regression for the keep() path:
// when work arrives in a worker's deque only via a thief's surplus
// re-push (a batch steal or injector drain keeping its extras), a
// parked worker must be woken to go steal it.  Without keep's wake the
// task below would sit in worker 0's deque with every worker parked and
// no other wake source, and the test would time out.
func TestKeepWakeParked(t *testing.T) {
	s := New(WithWorkers(2), WithTelemetry(), WithSpinRounds(1))
	defer shutdownOK(t, s)
	// No work has ever been submitted, so both workers park as soon as
	// they spin out.  Parks is counted just before the blocking receive,
	// so poll until both have reached it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, _ := s.Stats()
		if st.Total.Parks >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("workers never parked: %+v", st.Total)
		}
		time.Sleep(100 * time.Microsecond)
	}
	// Simulate the tail of a batch steal: surplus re-pushed through
	// keep(), exactly as a thief would.  The task is "already pending"
	// from keep's point of view, so account for it on the life word the
	// way the original Submit/Spawn would have.
	ran := make(chan int, 1)
	s.life.Add(1)
	s.workers[0].keep([]Task{func(w *Worker) { ran <- w.ID() }})
	select {
	case <-ran:
	case <-time.After(10 * time.Second):
		t.Fatal("no worker woke to run surplus re-pushed via keep()")
	}
}

// TestIdleStack exercises the Treiber stack directly, including the
// at-most-once discipline under concurrent push/pop.
func TestIdleStack(t *testing.T) {
	var st idleStack
	st.init(8)
	if _, ok := st.pop(); ok {
		t.Fatal("pop on empty stack succeeded")
	}
	st.push(3)
	st.push(5)
	if id, ok := st.pop(); !ok || id != 5 {
		t.Fatalf("pop = %d,%v; want 5 (LIFO)", id, ok)
	}
	if id, ok := st.pop(); !ok || id != 3 {
		t.Fatalf("pop = %d,%v; want 3", id, ok)
	}

	// Concurrent: ids are tokens — only the goroutine that popped an id
	// may push it back (the same ownership discipline parking gives the
	// real stack).  After the churn, exactly the original ids remain.
	for id := 0; id < 8; id++ {
		st.push(id)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				if id, ok := st.pop(); ok {
					st.push(id)
				}
			}
		}()
	}
	wg.Wait()
	seen := map[int]bool{}
	for {
		id, ok := st.pop()
		if !ok {
			break
		}
		if seen[id] {
			t.Fatalf("id %d popped twice after churn", id)
		}
		seen[id] = true
	}
	if len(seen) != 8 {
		t.Fatalf("stack holds %d ids after churn, want 8", len(seen))
	}
}
