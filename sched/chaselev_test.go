package sched

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"dcasdeque/deque"
)

// TestChaseLevTaskPushLeftUnsupported pins the contract the scheduler
// relies on when WithChaseLev is selected: the worker deques have no
// left push (Chase–Lev is single-ended-push), the rejection is the
// sentinel deque.ErrUnsupported, and a rejected push leaves the deque
// untouched.  sched never calls PushLeft itself — workers push right,
// thieves pop left — so this is the injector-instantiation of the
// contract: Deque[Task] built by the same constructor WithChaseLev uses.
func TestChaseLevTaskPushLeftUnsupported(t *testing.T) {
	d := deque.NewChaseLev[Task]()
	if err := d.PushLeft(func(*Worker) {}); !errors.Is(err, deque.ErrUnsupported) {
		t.Fatalf("PushLeft = %v, want deque.ErrUnsupported", err)
	}
	if _, err := d.PopLeft(); !errors.Is(err, deque.ErrEmpty) {
		t.Fatalf("deque not empty after rejected PushLeft: %v", err)
	}
}

// TestChaseLevSpawnOverflow starves the Chase–Lev owner deques (a
// 4-element arena) and the injector (capacity 8) so Spawn is forced
// through all three of its paths — owner push, injector overflow, and
// inline execution — and checks the conservation contract holds across
// them: every spawned task runs exactly once.
func TestChaseLevSpawnOverflow(t *testing.T) {
	s := New(WithWorkers(2),
		WithChaseLev(deque.WithMaxNodes(4)),
		WithInjectorCapacity(8),
		WithTelemetry())
	const n = 500
	var ran [n]atomic.Int32
	var wg sync.WaitGroup
	wg.Add(n + 1)
	if err := s.Submit(func(w *Worker) {
		defer wg.Done()
		for i := 0; i < n; i++ {
			i := i
			w.Spawn(func(*Worker) {
				ran[i].Add(1)
				wg.Done()
			})
		}
	}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	wg.Wait()
	shutdownOK(t, s)
	for i := range ran {
		if c := ran[i].Load(); c != 1 {
			t.Fatalf("task %d ran %d times", i, c)
		}
	}
	st, ok := s.Stats()
	if !ok {
		t.Fatal("telemetry enabled but Stats not ok")
	}
	if st.Total.Spawns != n {
		t.Fatalf("Total.Spawns = %d, want %d", st.Total.Spawns, n)
	}
	if st.Total.Runs != n+1 {
		t.Fatalf("Total.Runs = %d, want %d", st.Total.Runs, n+1)
	}
}
