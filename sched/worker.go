package sched

import (
	"math/rand/v2"
	"runtime"
	"sync/atomic"

	"dcasdeque/deque"
	"dcasdeque/internal/telemetry"
)

// Worker is one scheduler worker: a goroutine, its deque, and its
// parking channel.  Tasks receive their executing Worker and may call
// Spawn on it; no other methods are for task use.
type Worker struct {
	s    *Scheduler
	id   int
	dq   deque.Deque[Task]
	rng  *rand.Rand
	wake chan struct{}
}

func newWorker(s *Scheduler, id int, dq deque.Deque[Task]) *Worker {
	return &Worker{
		s:  s,
		id: id,
		dq: dq,
		// Deterministic per-worker streams: the steal experiments must be
		// reproducible run to run.
		rng: rand.New(rand.NewPCG(uint64(id), 0xdeca5)),
		// Capacity 1 carries the one wake token a worker can have
		// outstanding: a worker is on the idle stack at most once, every
		// send is preceded by popping it, and it consumes the token before
		// it can park again — so the send never blocks.
		wake: make(chan struct{}, 1),
	}
}

// ID reports the worker's index, in [0, NumWorkers).
func (w *Worker) ID() int { return w.id }

// size is this worker's published load estimate.
func (w *Worker) size() *atomic.Int64 { return &w.s.sizes[w.id].v }

// Spawn schedules a subtask from a running task: push to the owner's
// right end (LIFO), overflowing to the injector and finally to inline
// execution — a spawned task is never dropped.  The parent task's
// pending count covers the life-word increment, so Spawn needs no
// drain check: work spawned during a drain is part of the drain.
func (w *Worker) Spawn(t Task) {
	if t == nil {
		panic("sched: nil task")
	}
	s := w.s
	s.life.Add(1)
	s.note(w.id, telemetry.SchedSpawns)
	t = s.stamp(t, telemetry.SchedSubmitRun)
	if err := w.dq.PushRight(t); err == nil {
		w.size().Add(1) //dequevet:publish recheck=wakeOne advertise before a parker can miss the size
		s.wakeOne(w.id)
		return
	}
	if err := s.injector.PushRight(t); err == nil {
		s.injSize.Add(1) //dequevet:publish recheck=wakeOne
		s.wakeOne(w.id)
		return
	}
	w.runTask(t) // everything full: run inline, the standard overflow response
}

// runTask executes one task and retires its pending count.
func (w *Worker) runTask(t Task) {
	w.s.note(w.id, telemetry.SchedRuns)
	t(w)
	w.s.release()
}

// loop is the worker lifecycle: run work while it lasts, then
// spin → yield → park, and exit at quiescence.
func (w *Worker) loop() {
	defer w.s.wg.Done()
	spin := w.s.cfg.spinRounds
	misses := 0
	for {
		if t, ok := w.next(); ok {
			misses = 0
			w.runTask(t)
			continue
		}
		if w.s.quiesced() {
			w.s.wakeAll() // chain the announcement to still-parked workers
			return
		}
		misses++
		switch {
		case misses <= spin:
			// Hot retry: next() already swept every victim, so a miss this
			// early is usually a race about to resolve.
		case misses <= 2*spin:
			runtime.Gosched()
		default:
			w.park()
			misses = 0
		}
	}
}

// next finds one task: own deque first (right end, LIFO), then the
// shared injector, then stealing.
func (w *Worker) next() (Task, bool) {
	if t, err := w.dq.PopRight(); err == nil {
		w.size().Add(-1)
		return t, true
	}
	if t, ok := w.fromInjector(); ok {
		return t, true
	}
	return w.steal()
}

// fromInjector takes a batch of external submissions (left end: the
// injector is FIFO), keeps the first and queues the rest locally.  If
// submissions remain it wakes another worker — the standard wake
// propagation that turns one submit-side wakeup into as many workers
// as the backlog deserves.
func (w *Worker) fromInjector() (Task, bool) {
	got := w.s.injector.PopLMany(w.s.cfg.stealBatch)
	if len(got) == 0 {
		return nil, false
	}
	w.s.injSize.Add(-int64(len(got)))
	w.keep(got[1:])
	if w.s.injSize.Load() > 0 {
		w.s.wakeOne(w.id)
	}
	return got[0], true
}

// keep queues surplus tasks (from a batch steal or injector drain) on
// the worker's own deque, overflowing like Spawn but without touching
// the life word — these tasks are already pending.  Locally queued
// surplus is advertised with one wake: a parked worker whose only way
// to this work is stealing it back must hear that it exists (the wake
// then propagates — each woken thief keeps and advertises its own
// surplus in turn, fanning one wakeup out across the backlog).
func (w *Worker) keep(ts []Task) {
	queued := false
	for _, t := range ts {
		if err := w.dq.PushRight(t); err == nil {
			w.size().Add(1) //dequevet:publish recheck=wakeOne the trailing wake advertises the batch
			queued = true
			continue
		}
		if err := w.s.injector.PushRight(t); err == nil {
			w.s.injSize.Add(1) //dequevet:publish recheck=wakeOne
			w.s.wakeOne(w.id)
			continue
		}
		w.runTask(t)
	}
	if queued {
		w.s.wakeOne(w.id)
	}
}

// steal sweeps the other workers for work: two-choice victim selection
// (sample two, rob the one that looks more loaded — the power of two
// choices applied to victim selection), taking half the victim's
// apparent load in one left-end batch, up to the steal cap.
func (w *Worker) steal() (Task, bool) {
	s := w.s
	n := len(s.workers)
	if n == 1 {
		return nil, false
	}
	if reg := s.region("sched.steal"); reg != nil {
		defer reg.End()
	}
	// 2n samples ≈ every victim twice in expectation: enough that an
	// empty-handed return means the system really did look idle.
	for attempt := 0; attempt < 2*n; attempt++ {
		v := w.victim()
		if v2 := w.victim(); s.sizes[v2].v.Load() > s.sizes[v].v.Load() {
			v = v2
		}
		got := s.workers[v].dq.PopLMany(w.batchFor(v))
		if len(got) == 0 {
			continue
		}
		s.sizes[v].v.Add(-int64(len(got)))
		s.note(w.id, telemetry.SchedSteals)
		s.noteN(w.id, telemetry.SchedStolen, uint64(len(got)))
		s.stampBatch(got, telemetry.SchedStealRun)
		w.keep(got[1:])
		return got[0], true
	}
	s.note(w.id, telemetry.SchedStealFails)
	return nil, false
}

// victim picks a uniformly random worker other than this one.
func (w *Worker) victim() int {
	v := w.rng.IntN(len(w.s.workers) - 1)
	if v >= w.id {
		v++
	}
	return v
}

// batchFor sizes a steal at half the victim's apparent load, clamped
// to [1, stealBatch].
func (w *Worker) batchFor(v int) int {
	k := int(w.s.sizes[v].v.Load() / 2)
	if k < 1 {
		k = 1
	}
	if max := w.s.cfg.stealBatch; k > max {
		k = max
	}
	return k
}

// park publishes this worker on the idle stack, re-checks for work or
// quiescence (the Dekker recheck — without it a work publication that
// raced our stack push could strand us), and blocks for a wake token.
func (w *Worker) park() {
	s := w.s
	s.idle.push(w.id) //dequevet:publish recheck=workAvailable,quiesced the Dekker recheck below
	if s.workAvailable() || s.quiesced() {
		// Resolve the race by waking someone — possibly ourselves; either
		// way the token is consumed below or by another worker who will
		// find what we saw.
		s.wakeOne(w.id)
	}
	s.note(w.id, telemetry.SchedParks)
	w.parkWait()
}
