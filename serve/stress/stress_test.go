package stress

import "testing"

// TestRandomizedRuns executes a batch of randomized server lifetimes —
// the same harness dequestress -serve scales to thousands of runs.
func TestRandomizedRuns(t *testing.T) {
	runs := 60
	if testing.Short() {
		runs = 10
	}
	for seed := uint64(1); seed <= uint64(runs); seed++ {
		st, err := Run(Config{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d (%d tenants, %d workers, %s backend, %d clients): %v",
				seed, st.Tenants, st.Workers, st.Backend, st.Clients, err)
		}
	}
}
