// Package stress is the job service's randomized fault harness — the
// serve counterpart of sched/stress.  One Run is one server lifetime
// with every knob randomized from the seed: tenant set (count, weights,
// queue depths), scheduler shape (workers, backend, injector capacity),
// client mix (count, per-client request volume, tenant bursts), client
// misbehaviour (request-context cancellation — the abandoning reader),
// and a mid-load Shutdown whose drain deadline is sometimes generous
// and sometimes already hopeless.
//
// It certifies the three properties the serving layer promises:
//
//   - Exactly-once execution: after full drain, the scheduler's run
//     count equals the admission layer's accepted count — every
//     accepted job ran exactly once, including jobs whose clients were
//     released by a drain deadline or walked away mid-wait.
//   - Zero lost responses: every client call returns within the
//     watchdog (no stranded waiter), completed responses carry the
//     deterministically correct result for their request (no
//     cross-wired replies), and the client-observed completion count
//     equals the server's completed counter exactly.
//   - Conservation: received == accepted + rejected-busy +
//     rejected-drain and accepted == completed + abandoned, per tenant
//     and in total.
package stress

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dcasdeque/sched"
	"dcasdeque/serve"
)

// Config parameterizes Run.  Only the seed is required.
type Config struct {
	// Seed drives all randomization; equal seeds give equal scenarios.
	Seed uint64
	// Timeout is the stranded-waiter watchdog per run (default 30s).
	Timeout time.Duration
}

// Stats describes the scenario one Run executed.
type Stats struct {
	Tenants   int
	Workers   int
	Backend   string
	Clients   int
	Requests  uint64 // client calls issued
	Completed uint64 // 200s observed by clients
	Busy      uint64 // 429s
	Drain     uint64 // 503s
	Burst     bool   // all clients aimed at one tenant
	Killed    bool   // the drain deadline expired before quiescence
}

var backends = []struct {
	name string
	opt  sched.Option
}{
	{"chaselev", sched.WithChaseLev()},
	{"array", sched.WithArrayDeques()},
}

// fib mirrors the serve package's deterministic fib job, so responses
// are verifiable without trusting the server.
func fib(n int) uint64 {
	var a, b uint64 = 0, 1
	for i := 0; i < n; i++ {
		a, b = b, a+b
	}
	return a
}

// Run executes one randomized server lifetime and verifies the
// exactly-once, zero-lost-response, and conservation properties; a nil
// error certifies all three for this scenario.
func Run(cfg Config) (Stats, error) {
	if cfg.Timeout == 0 {
		cfg.Timeout = 30 * time.Second
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x5e12e))

	st := Stats{
		Tenants: 1 + rng.IntN(3),
		Workers: 1 + rng.IntN(4),
		Backend: backends[rng.IntN(len(backends))].name,
		Clients: 2 + rng.IntN(8),
		Burst:   rng.IntN(3) == 0,
	}
	var tenants []serve.TenantConfig
	for i := 0; i < st.Tenants; i++ {
		tenants = append(tenants, serve.TenantConfig{
			Name:     fmt.Sprintf("t%d", i),
			Weight:   1 + rng.IntN(4),
			QueueCap: 1 + rng.IntN(32), // small on purpose: 429 paths must conserve too
		})
	}
	var backendOpt sched.Option
	for _, b := range backends {
		if b.name == st.Backend {
			backendOpt = b.opt
		}
	}
	s := serve.New(
		serve.WithTenants(tenants...),
		serve.WithSchedOptions(
			backendOpt,
			sched.WithWorkers(st.Workers),
			sched.WithInjectorCapacity(1+rng.IntN(32)),
			sched.WithTelemetry(), // run counts for the exactly-once check
		),
	)

	var (
		requests, ok200, busy429, drain503, abandoned atomic.Uint64
		verifyErr                                     atomic.Pointer[string]
		wg                                            sync.WaitGroup
	)
	fail := func(format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		verifyErr.CompareAndSwap(nil, &msg)
	}

	perClient := 1 + rng.IntN(40)
	cancelPermille := rng.IntN(200) // up to 20% of requests abandon mid-wait
	fibN := 5 + rng.IntN(20)
	wantFib := fib(fibN)

	for c := 0; c < st.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			crng := rand.New(rand.NewPCG(cfg.Seed, uint64(c)+1))
			for i := 0; i < perClient; i++ {
				tenant := tenants[crng.IntN(len(tenants))].Name
				if st.Burst {
					tenant = tenants[0].Name
				}
				echo := crng.IntN(2) == 1
				var body string
				wantData := ""
				if echo {
					wantData = fmt.Sprintf("c%d-r%d", c, i)
					body = fmt.Sprintf(`{"kind":"echo","data":%q}`, wantData)
				} else {
					body = fmt.Sprintf(`{"kind":"fib","n":%d}`, fibN)
				}
				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if crng.IntN(1000) < cancelPermille {
					// The abandoning reader: walk away shortly after asking.
					ctx, cancel = context.WithTimeout(ctx, time.Duration(crng.IntN(500))*time.Microsecond)
				}
				req := httptest.NewRequest("POST", "/jobs", strings.NewReader(body)).WithContext(ctx)
				req.Header.Set("X-Tenant", tenant)
				rr := httptest.NewRecorder()
				requests.Add(1)
				s.ServeHTTP(rr, req)
				cancel()
				switch {
				case rr.Code == 200 && rr.Body.Len() > 0:
					var resp serve.JobResponse
					if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
						fail("client %d req %d: bad response body %q: %v", c, i, rr.Body.String(), err)
						return
					}
					if echo {
						if resp.Data != wantData {
							fail("client %d req %d: cross-wired response: echo %q returned %q",
								c, i, wantData, resp.Data)
							return
						}
					} else if resp.Result != wantFib {
						fail("client %d req %d: fib(%d) = %d, want %d", c, i, fibN, resp.Result, wantFib)
						return
					}
					ok200.Add(1)
				case rr.Code == 200:
					// Handler wrote nothing: the request's context fired while
					// waiting — the abandoned path.
					abandoned.Add(1)
				case rr.Code == 429:
					if rr.Header().Get("Retry-After") == "" {
						fail("client %d req %d: 429 without Retry-After", c, i)
						return
					}
					busy429.Add(1)
				case rr.Code == 503:
					drain503.Add(1)
				default:
					fail("client %d req %d: unexpected status %d %q", c, i, rr.Code, rr.Body.String())
					return
				}
			}
		}(c)
	}

	// Mid-load shutdown: after a random slice of the traffic, drain with
	// a deadline that is sometimes generous and sometimes already
	// hopeless (exercising the killed-waiter release).
	time.Sleep(time.Duration(rng.IntN(2000)) * time.Microsecond)
	deadline := time.Duration(rng.IntN(3)) * time.Millisecond // 0 → instant expiry sometimes
	if rng.IntN(2) == 0 {
		deadline = cfg.Timeout
	}
	dctx, dcancel := context.WithTimeout(context.Background(), deadline)
	if err := s.Shutdown(dctx); err != nil {
		st.Killed = true
	}
	dcancel()

	// The watchdog: every client must return, drained or killed.
	joined := make(chan struct{})
	go func() { wg.Wait(); close(joined) }()
	select {
	case <-joined:
	case <-time.After(cfg.Timeout):
		return st, fmt.Errorf("stranded waiter: clients still blocked %v after shutdown", cfg.Timeout)
	}
	// Wait out the background drain so the exactly-once count is final.
	wctx, wcancel := context.WithTimeout(context.Background(), cfg.Timeout)
	defer wcancel()
	if err := s.Shutdown(wctx); err != nil {
		return st, fmt.Errorf("drain never quiesced: %v", err)
	}

	if msg := verifyErr.Load(); msg != nil {
		return st, fmt.Errorf("%s", *msg)
	}
	st.Requests = requests.Load()
	st.Completed = ok200.Load()
	st.Busy = busy429.Load()
	st.Drain = drain503.Load()

	// A post-drain probe must be refused cleanly, and its refusal must
	// itself be counted (conservation includes the drain window).
	probe := httptest.NewRecorder()
	s.ServeHTTP(probe, httptest.NewRequest("POST", "/jobs", strings.NewReader(`{"kind":"fib","n":1}`)))
	if probe.Code != 503 {
		return st, fmt.Errorf("post-drain probe: status %d, want 503", probe.Code)
	}

	sst := s.Stats()
	if ok, tenant := sst.Conserved(); !ok {
		return st, fmt.Errorf("conservation violated (tenant %q): %+v", tenant, sst)
	}
	// Zero lost responses: the clients' 200 count is the server's
	// completed count, exactly.
	if sst.Total.Completed != st.Completed {
		return st, fmt.Errorf("lost responses: server completed %d, clients observed %d",
			sst.Total.Completed, st.Completed)
	}
	// Exactly-once: every accepted job ran exactly once on the
	// scheduler, including jobs whose waiters were killed or walked.
	schedStats, ok := s.Scheduler().Stats()
	if !ok {
		return st, fmt.Errorf("scheduler telemetry missing")
	}
	if schedStats.Total.Runs != sst.Total.Accepted {
		return st, fmt.Errorf("exactly-once violated: accepted %d jobs, scheduler ran %d",
			sst.Total.Accepted, schedStats.Total.Runs)
	}
	return st, nil
}
