package serve

import "dcasdeque/deque"

// tenant is one admission lane: a bounded MPMC ingestion queue
// (handlers PushRight, the pump PopLefts — FIFO) plus its round-robin
// weight.  The queue is a DCAS array deque, the same bounded-deque
// substrate the scheduler's injector uses, so tenant isolation costs
// no locks.
type tenant struct {
	idx    int
	name   string
	weight int
	queue  deque.Deque[*pending]
}

// pending is one admitted request in flight between the HTTP handler
// and a scheduler worker.  The handler owns the wait; the worker owns
// the single send.
type pending struct {
	job   Job
	t     *tenant
	enqNs int64 // admission timestamp (metrics.Nanotime)
	subNs int64 // scheduler-accept timestamp, stamped by the pump
	done  chan result
}

// result is what the worker delivers: the job's output and the run
// timing the respond stage is measured from.
type result struct {
	value  uint64
	data   string
	worker int
	runNs  int64
	doneNs int64
	err    error
}
