package serve

import (
	"net/http"
	"net/http/pprof"

	"dcasdeque/deque"
)

// ExpositionMux returns a mux with the repository's full observability
// surface mounted: the flat-text exporter at /telemetry (dequetop's
// scrape target), the Prometheus text exposition at /metrics, and the
// pprof handlers under /debug/pprof — the wiring every serving binary
// (dequeserve, examples/worksteal -listen) shares instead of
// hand-rolling.  Handlers are mounted on a fresh mux, not
// http.DefaultServeMux, so embedding binaries control their surface.
func ExpositionMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/telemetry", deque.TelemetryHandler())
	mux.Handle("/metrics", deque.PrometheusHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
