package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dcasdeque/sched"
)

// post runs one job request against the server and returns the
// recorder.  The handler blocks until the job completes (or is
// rejected), so callers that want concurrency use goroutines.
func post(s *Server, tenant, body string) *httptest.ResponseRecorder {
	rr := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/jobs", strings.NewReader(body))
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	s.ServeHTTP(rr, req)
	return rr
}

func shutdown(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func mustConserve(t *testing.T, s *Server) Stats {
	t.Helper()
	st := s.Stats()
	if ok, tn := st.Conserved(); !ok {
		t.Fatalf("conservation violated (tenant %q): %+v", tn, st)
	}
	return st
}

func TestJobRoundTrip(t *testing.T) {
	s := New(WithSchedOptions(sched.WithWorkers(2)))
	defer shutdown(t, s)

	rr := post(s, "", `{"kind":"fib","n":10}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d, body %q", rr.Code, rr.Body.String())
	}
	var resp JobResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Result != 55 { // fib(10)
		t.Fatalf("fib(10) = %d, want 55", resp.Result)
	}
	if resp.Tenant != "default" {
		t.Fatalf("tenant %q, want default", resp.Tenant)
	}
	st := mustConserve(t, s)
	if st.Total.Completed != 1 || st.Total.Accepted != 1 || st.Total.Received != 1 {
		t.Fatalf("counters: %+v", st.Total)
	}
	if st.Stages.Ingest.N != 1 || st.Stages.Submit.N != 1 || st.Stages.Run.N != 1 || st.Stages.Respond.N != 1 {
		t.Fatalf("stage counts: %+v", st.Stages)
	}
}

func TestBadRequests(t *testing.T) {
	s := New()
	defer shutdown(t, s)
	for _, body := range []string{"not json", `{"kind":"nope"}`, `{"kind":"fib","n":-1}`} {
		if rr := post(s, "", body); rr.Code != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, rr.Code)
		}
	}
	if rr := httptest.NewRecorder(); true {
		s.ServeHTTP(rr, httptest.NewRequest("GET", "/jobs", nil))
		if rr.Code != http.StatusMethodNotAllowed {
			t.Fatalf("GET: status %d, want 405", rr.Code)
		}
	}
	// Malformed requests precede admission: the counters never moved.
	st := s.Stats()
	if st.Total.Received != 0 {
		t.Fatalf("received %d, want 0", st.Total.Received)
	}
}

// blockedServer builds a server whose scheduler cannot make progress:
// its one worker is parked on a gate task and the injector is filled,
// so the pump's blocking Submit wedges and tenant queues back up.
// Returns the gate to close for release.
func blockedServer(t *testing.T, queueCap int) (*Server, chan struct{}) {
	t.Helper()
	gate := make(chan struct{})
	s := New(
		WithTenants(TenantConfig{Name: "default", Weight: 1, QueueCap: queueCap}),
		WithSchedOptions(sched.WithWorkers(1), sched.WithInjectorCapacity(1)),
	)
	// Occupy the sole worker.
	if err := s.Scheduler().Submit(func(*sched.Worker) { <-gate }); err != nil {
		t.Fatal(err)
	}
	// Give the worker a moment to pick it up, then fill the injector so
	// the pump's next Submit blocks.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := s.Scheduler().TrySubmit(func(*sched.Worker) {})
		if err == sched.ErrSaturated {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("injector never saturated")
		}
	}
	return s, gate
}

func TestSaturationReturns429WithRetryAfter(t *testing.T) {
	s, gate := blockedServer(t, 2)
	var wg sync.WaitGroup
	var got429 atomic.Uint64
	// With the scheduler wedged, at most queueCap + 1 (in the pump's
	// hand) requests can be admitted; the rest must bounce with 429.
	const n = 8
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rr := post(s, "", `{"kind":"echo","data":"x"}`)
			if rr.Code == http.StatusTooManyRequests {
				got429.Add(1)
				if ra := rr.Header().Get("Retry-After"); ra == "" {
					t.Error("429 missing Retry-After")
				}
			}
		}()
	}
	// Wait until every request has passed admission: rejected ones have
	// returned, accepted ones are parked on their results.  With the
	// scheduler wedged, admitted ≤ queue capacity + the one in the
	// pump's hand, so rejections must appear.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.Stats().Total
		if st.Received == n && st.RejectedBusy >= 1 && got429.Load() == st.RejectedBusy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("admission never settled: %+v, %d 429s seen", st, got429.Load())
		}
		time.Sleep(time.Millisecond)
	}
	close(gate) // release the worker; accepted requests complete
	wg.Wait()
	shutdown(t, s)
	st := mustConserve(t, s)
	if st.Total.RejectedBusy == 0 {
		t.Fatal("no 429s recorded")
	}
	if st.Total.Received != n {
		t.Fatalf("received %d, want %d", st.Total.Received, n)
	}
	if st.Total.Accepted != st.Total.Completed {
		t.Fatalf("accepted %d != completed %d after clean drain",
			st.Total.Accepted, st.Total.Completed)
	}
}

func TestDrainWindowReturns503(t *testing.T) {
	s := New()
	// Begin draining in the background; an idle server drains
	// immediately, after which requests must bounce with 503.
	shutdown(t, s)
	rr := post(s, "", `{"kind":"fib","n":5}`)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("503 missing Retry-After")
	}
	st := mustConserve(t, s)
	if st.Total.RejectedDrain != 1 {
		t.Fatalf("rejected_drain %d, want 1", st.Total.RejectedDrain)
	}
	// healthz reflects the drain.
	hr := httptest.NewRecorder()
	s.Mux().ServeHTTP(hr, httptest.NewRequest("GET", "/healthz", nil))
	if hr.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %d, want 503", hr.Code)
	}
}

func TestShutdownCompletesInFlight(t *testing.T) {
	s := New(WithSchedOptions(sched.WithWorkers(2)))
	const n = 64
	var wg sync.WaitGroup
	var ok atomic.Uint64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if rr := post(s, "", `{"kind":"spin","n":2000}`); rr.Code == http.StatusOK {
				ok.Add(1)
			}
		}()
	}
	// Shut down while requests are in flight; accepted ones must still
	// complete with 200, later ones bounce with 503.
	time.Sleep(time.Millisecond)
	shutdown(t, s)
	wg.Wait()
	st := mustConserve(t, s)
	if st.Total.Completed != ok.Load() {
		t.Fatalf("completed %d, clients saw %d OKs", st.Total.Completed, ok.Load())
	}
	if st.Total.Abandoned != 0 {
		t.Fatalf("clean drain abandoned %d requests", st.Total.Abandoned)
	}
	if got := st.Total.Completed + st.Total.RejectedDrain + st.Total.RejectedBusy; got != n {
		t.Fatalf("responses %d, want %d", got, n)
	}
}

func TestDrainDeadlineReleasesWaiters(t *testing.T) {
	s, gate := blockedServer(t, 4)
	var wg sync.WaitGroup
	var got503 atomic.Uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		if rr := post(s, "", `{"kind":"echo","data":"hi"}`); rr.Code == http.StatusServiceUnavailable {
			got503.Add(1)
		}
	}()
	// Wait until the request is admitted (accepted counter moves).
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Total.Accepted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	// Shutdown with an immediately expired deadline: the waiter must be
	// released with 503, not stranded.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Shutdown(ctx); err != context.Canceled {
		t.Fatalf("Shutdown = %v, want context.Canceled", err)
	}
	wg.Wait()
	if got503.Load() != 1 {
		t.Fatal("waiter not released with 503")
	}
	// Release the worker and finish the background drain.
	close(gate)
	shutdown(t, s)
	st := mustConserve(t, s)
	if st.Total.Abandoned != 1 {
		t.Fatalf("abandoned %d, want 1", st.Total.Abandoned)
	}
}

func TestWeightedRoundRobinSchedule(t *testing.T) {
	s := New(WithTenants(
		TenantConfig{Name: "gold", Weight: 3, QueueCap: 64},
		TenantConfig{Name: "free", Weight: 1, QueueCap: 64},
	))
	defer shutdown(t, s)
	// Stop the pump from racing this test's direct queue access: fill
	// queues by hand and run cycles with a capturing submit.
	// (The live pump is parked: nothing has pinged notify.)
	for i := 0; i < 6; i++ {
		for _, tn := range s.tenants {
			if err := tn.queue.PushRight(&pending{t: tn, done: make(chan result, 1)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// The capture callback does not touch the ingress word: these
	// pendings were stuffed in directly, never admitted.
	var order []string
	for cycle := 0; cycle < 2; cycle++ {
		if !s.cycle(func(p *pending) { order = append(order, p.t.name) }) {
			t.Fatal("cycle moved nothing")
		}
	}
	// Two cycles over full backlogs: 3 gold + 1 free per cycle.
	want := []string{"gold", "gold", "gold", "free", "gold", "gold", "gold", "free"}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
	// Drain the leftovers so shutdown's pump exit finds empty queues.
	for s.cycle(func(*pending) {}) {
	}
}

func TestWeightedFairnessUnderLoad(t *testing.T) {
	// End to end: both tenants saturate a 1-worker server; the 3:1
	// weighting must show up in completions, within tolerance.
	s := New(
		WithTenants(
			TenantConfig{Name: "gold", Weight: 3, QueueCap: 256},
			TenantConfig{Name: "free", Weight: 1, QueueCap: 256},
		),
		WithSchedOptions(sched.WithWorkers(1)),
	)
	var wg sync.WaitGroup
	const perTenant = 120
	for _, tenant := range []string{"gold", "free"} {
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func(tn string) {
				defer wg.Done()
				post(s, tn, `{"kind":"spin","n":20000}`)
			}(tenant)
		}
	}
	wg.Wait()
	shutdown(t, s)
	st := mustConserve(t, s)
	var gold, free uint64
	for _, tc := range st.Tenants {
		switch tc.Name {
		case "gold":
			gold = tc.Completed
		case "free":
			free = tc.Completed
		}
	}
	if gold != perTenant || free != perTenant {
		t.Fatalf("completions gold=%d free=%d, want %d each", gold, free, perTenant)
	}
}

func TestUnknownTenantFallsToCatchAll(t *testing.T) {
	s := New(WithTenants(
		TenantConfig{Name: "main", Weight: 1},
		TenantConfig{Name: "other", Weight: 1},
	))
	defer shutdown(t, s)
	rr := post(s, "nonexistent", `{"kind":"fib","n":3}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d", rr.Code)
	}
	var resp JobResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Tenant != "main" {
		t.Fatalf("tenant %q, want catch-all main", resp.Tenant)
	}
}

func TestExpositionMuxServesRegistry(t *testing.T) {
	s := New(WithName("servetest"))
	mux := s.Mux()
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("POST", "/jobs", strings.NewReader(`{"kind":"fib","n":7}`)))
	if rr.Code != http.StatusOK {
		t.Fatalf("jobs: %d", rr.Code)
	}
	tr := httptest.NewRecorder()
	mux.ServeHTTP(tr, httptest.NewRequest("GET", "/telemetry", nil))
	body := tr.Body.String()
	for _, want := range []string{
		"servetest.serve.total.received 1",
		"servetest.serve.total.completed 1",
		"servetest.serve.tenant.default.accepted 1",
		"servetest.serve.lat.ingest.n 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("telemetry missing %q in:\n%s", want, body)
		}
	}
	pr := httptest.NewRecorder()
	mux.ServeHTTP(pr, httptest.NewRequest("GET", "/metrics", nil))
	pbody := pr.Body.String()
	for _, want := range []string{
		`dcasdeque_serve_requests_total{server="servetest",tenant="default",outcome="completed"} 1`,
		`dcasdeque_serve_stage_latency_seconds_count{server="servetest",stage="run"} 1`,
	} {
		if !strings.Contains(pbody, want) {
			t.Fatalf("prometheus missing %q in:\n%s", want, pbody)
		}
	}
	// Unregistration on shutdown: the entry disappears.
	shutdown(t, s)
	tr2 := httptest.NewRecorder()
	mux.ServeHTTP(tr2, httptest.NewRequest("GET", "/telemetry", nil))
	if strings.Contains(tr2.Body.String(), "servetest.serve") {
		t.Fatal("serve entry still registered after Shutdown")
	}
}
