package serve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"dcasdeque/internal/metrics"
	"dcasdeque/internal/telemetry"
)

// JobResponse is the wire shape of a completed job.
type JobResponse struct {
	Tenant string `json:"tenant"`
	Kind   string `json:"kind"`
	Result uint64 `json:"result"`
	Data   string `json:"data,omitempty"`
	Worker int    `json:"worker"`
	// QueueNs is admission → scheduler accept (the backpressure the
	// client actually waited through); RunNs is execution time.
	QueueNs int64 `json:"queue_ns"`
	RunNs   int64 `json:"run_ns"`
}

// ServeHTTP is the job endpoint: POST a Job, receive a JobResponse.
// Tenancy is the X-Tenant header (unknown names land on the first
// configured tenant).  Backpressure is explicit: a full tenant queue
// answers 429 and a draining server 503, both with Retry-After.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	t0 := metrics.Nanotime()
	var job Job
	if err := json.NewDecoder(r.Body).Decode(&job); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := job.validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// A well-formed job is "received"; from here every path increments
	// exactly one of accepted / rejected_busy / rejected_drain, so the
	// admission counters conserve.
	t := s.tenantFor(r.Header.Get("X-Tenant"))
	s.sink.Inc(t.idx, telemetry.ServeReceived)

	if !s.admit() {
		s.sink.Inc(t.idx, telemetry.ServeRejectedDrain)
		s.reject(w, http.StatusServiceUnavailable, "draining")
		return
	}
	p := &pending{job: job, t: t, enqNs: metrics.Nanotime(), done: make(chan result, 1)}
	if err := t.queue.PushRight(p); err != nil {
		// ErrFull from the bounded tenant queue: the ErrSaturated
		// backpressure story made client-visible.  unadmit undoes the
		// ingress count so a rejected request leaves nothing to drain.
		s.unadmit()
		s.sink.Inc(t.idx, telemetry.ServeRejectedBusy)
		s.reject(w, http.StatusTooManyRequests, "tenant queue full")
		return
	}
	s.sink.Inc(t.idx, telemetry.ServeAccepted)
	s.sink.Stage(telemetry.StageIngest, uint64(metrics.Nanotime()-t0))
	// Publish the work, then ping the pump — the submitter half of the
	// scheduler's Dekker handshake, one layer up.
	select {
	case s.notify <- struct{}{}:
	default:
	}

	select {
	case res := <-p.done:
		if res.err != nil {
			// Defensive: the drain order hands every admitted request to
			// sched before shutting it down, so this path needs a scheduler
			// refusing outside that order.  The client is answered, never
			// stranded.
			s.sink.Inc(t.idx, telemetry.ServeAbandoned)
			s.reject(w, http.StatusServiceUnavailable, "scheduler shut down")
			return
		}
		s.sink.Stage(telemetry.StageRun, uint64(res.runNs))
		resp := JobResponse{
			Tenant:  t.name,
			Kind:    job.Kind,
			Result:  res.value,
			Data:    res.data,
			Worker:  res.worker,
			QueueNs: p.subNs - p.enqNs,
			RunNs:   res.runNs,
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
		s.sink.Stage(telemetry.StageRespond, uint64(metrics.Nanotime()-res.doneNs))
		s.sink.Inc(t.idx, telemetry.ServeCompleted)
	case <-s.killed:
		// Drain deadline expired: release the client with 503.  The job
		// itself still runs exactly once on the background drain; its
		// result send lands in the buffered channel and is dropped.
		s.sink.Inc(t.idx, telemetry.ServeAbandoned)
		s.reject(w, http.StatusServiceUnavailable, "drain deadline exceeded")
	case <-r.Context().Done():
		// Client went away; same accounting — the job is not lost, its
		// response is.
		s.sink.Inc(t.idx, telemetry.ServeAbandoned)
	}
}

// reject writes a backpressure response with the Retry-After hint.
func (s *Server) reject(w http.ResponseWriter, code int, msg string) {
	secs := int((s.cfg.retryAfter + 999_999_999) / 1_000_000_000)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprint(secs))
	http.Error(w, msg, code)
}
