package serve

import (
	"errors"
	"fmt"
)

// Job is the wire shape of one unit of work.  The built-in kinds cover
// the load shapes the serving experiments need: "fib" is deterministic
// CPU work scaling with N (iterative, so one job is one task), "spin"
// is calibrated busy-work of N PRNG rounds, and "echo" returns Data —
// the I/O-bound extreme.
type Job struct {
	Kind string `json:"kind"`
	N    int    `json:"n,omitempty"`
	Data string `json:"data,omitempty"`
}

// errBadJob rejects malformed jobs before they touch admission.
var errBadJob = errors.New("serve: bad job")

// jobMaxN bounds per-job work so a single request cannot occupy a
// worker unboundedly — the per-request analogue of bounded queues.
const jobMaxN = 10_000_000

// validate enforces the job contract (known kind, bounded N).
func (j Job) validate() error {
	switch j.Kind {
	case "fib", "spin":
		if j.N < 0 || j.N > jobMaxN {
			return fmt.Errorf("%w: n must be in [0, %d]", errBadJob, jobMaxN)
		}
		return nil
	case "echo":
		return nil
	default:
		return fmt.Errorf("%w: unknown kind %q", errBadJob, j.Kind)
	}
}

// execute runs the job and returns its numeric result and echoed data.
// Pure CPU, no blocking: a job occupies exactly one scheduler task.
func (j Job) execute() (uint64, string) {
	switch j.Kind {
	case "fib":
		// Iterative, wrapping uint64 Fibonacci: deterministic, so load
		// generators can verify results end to end.
		var a, b uint64 = 0, 1
		for i := 0; i < j.N; i++ {
			a, b = b, a+b
		}
		return a, ""
	case "spin":
		// xorshift busy-work; the checksum defeats dead-code elimination.
		x := uint64(j.N) | 1
		for i := 0; i < j.N; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		return x, ""
	default: // echo
		return uint64(len(j.Data)), j.Data
	}
}
