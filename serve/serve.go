// Package serve is the network-facing job service built on the
// work-stealing scheduler: an HTTP ingestion layer where requests land
// in per-tenant bounded queues, flow through a weighted round-robin
// pump into sched, execute on whichever deque backend the scheduler was
// built over, and stream their results back to the waiting client.
//
// The load-bearing idea is bounded admission.  Every queue between the
// client and a worker is bounded — the per-tenant ingestion queues, the
// scheduler's injector, the worker deques — so overload cannot
// accumulate as unbounded latency anywhere inside the process.  It is
// instead converted, at the outermost edge, into an explicit
// client-visible decision: a full tenant queue answers 429 Too Many
// Requests with a Retry-After hint, and a draining server answers 503.
// The per-tenant admission counters make the policy auditable as a
// conservation law: received == accepted + rejected-busy +
// rejected-drain, and accepted == completed + abandoned, exactly.
//
// Admission linearizes against shutdown on a single ingress word, the
// sched life-word pattern one layer up: the top bit is the drain flag
// and the rest counts requests admitted into tenant queues but not yet
// handed to the scheduler.  A handler joins by CAS (failing once the
// drain bit is set → 503); the pump retires a request's count only
// after the scheduler has accepted it.  Shutdown therefore has a
// well-founded drain order: raise the drain bit (no new admissions),
// wait for the ingress word to hit exactly drainBit (every admitted
// request has reached sched), then drain the scheduler itself
// (Shutdown runs every accepted task exactly once).  A client that was
// accepted always gets a response: its result, or — if the caller's
// drain deadline expires first — a 503 while the job still completes
// on the background drain.
//
// Each request's life is timed in four stages (ingest → submit → run →
// respond) through sharded histograms, and the admission counters are
// registered with the process-wide exporter, so /telemetry, /metrics
// (Prometheus) and dequetop see the service with zero extra wiring.
package serve

import (
	"context"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dcasdeque/deque"
	"dcasdeque/internal/metrics"
	"dcasdeque/internal/telemetry"
	"dcasdeque/sched"
)

// TenantConfig describes one tenant's admission contract: its share of
// the pump's round-robin credits and the depth of its bounded
// ingestion queue (the overload buffer that, once full, becomes 429s).
type TenantConfig struct {
	Name string
	// Weight is the tenant's credits per round-robin cycle (≥ 1).  With
	// both tenants backlogged, a weight-3 tenant's jobs reach the
	// scheduler 3× as often as a weight-1 tenant's.
	Weight int
	// QueueCap bounds the tenant's ingestion queue (0 → the server
	// default, WithQueueCapacity).
	QueueCap int
}

// Option configures New.
type Option func(*config)

type config struct {
	name       string
	tenants    []TenantConfig
	schedOpts  []sched.Option
	queueCap   int
	retryAfter time.Duration
}

func defaultConfig() config {
	return config{
		tenants:    []TenantConfig{{Name: "default", Weight: 1}},
		queueCap:   1024,
		retryAfter: time.Second,
	}
}

// WithTenants declares the tenant set (default: one tenant named
// "default" with weight 1).  Requests name their tenant in the
// X-Tenant header; unknown or empty names fall through to the first
// configured tenant, so the first entry is the catch-all.
func WithTenants(ts ...TenantConfig) Option {
	return func(c *config) {
		if len(ts) > 0 {
			c.tenants = ts
		}
	}
}

// WithQueueCapacity sets the default per-tenant ingestion queue depth
// (default 1024), used by tenants whose TenantConfig.QueueCap is 0.
func WithQueueCapacity(n int) Option {
	return func(c *config) { c.queueCap = n }
}

// WithSchedOptions forwards options to the scheduler the server builds
// (backend selection, worker count, injector capacity, telemetry...).
// The server's default scheduler is Chase–Lev-backed; pass
// sched.WithArrayDeques() etc. to race other backends under identical
// serving load.
func WithSchedOptions(opts ...sched.Option) Option {
	return func(c *config) { c.schedOpts = append(c.schedOpts, opts...) }
}

// WithName registers the server's admission counters and stage
// histograms under the given name with the process-wide exporter
// (/telemetry flat text, expvar "dcasdeque", and /metrics Prometheus
// families).
func WithName(name string) Option {
	return func(c *config) { c.name = name }
}

// WithRetryAfter sets the Retry-After hint attached to 429 and 503
// responses (default 1s), rounded up to whole seconds as the header
// requires.
func WithRetryAfter(d time.Duration) Option {
	return func(c *config) { c.retryAfter = d }
}

// ingress-word layout: sched's life word applied to admission.  The
// top bit is the drain flag; the rest counts requests admitted into a
// tenant queue whose hand-off to the scheduler has not completed.
// drainBit alone is the pump's exit condition: draining, and every
// admitted request has reached sched.
const (
	drainBit   = uint64(1) << 63
	queuedMask = drainBit - 1
)

// Server is the job service.  Create with New, mount Mux (or the
// Server itself as the /jobs handler) on an http.Server, and stop with
// Shutdown.  All methods are safe for concurrent use.
type Server struct {
	cfg     config
	sched   *sched.Scheduler
	tenants []*tenant
	byName  map[string]*tenant
	sink    *telemetry.ServeSink
	unreg   func()
	//dequevet:packed queued:63 drain:1
	ingress  atomic.Uint64
	notify   chan struct{} // cap 1: handlers ping the pump after a push
	drainCh  chan struct{} // closed when Shutdown raises the drain bit
	killed   chan struct{} // closed when the drain deadline expires: waiters answer 503
	pumpDone chan struct{}
	done     chan struct{} // closed when the scheduler has fully drained
	stopping sync.Once
	killing  sync.Once
}

// New builds a server and starts its scheduler and pump.  The pump
// parks immediately; an idle server costs nothing until the first
// request.  Call Shutdown to stop it.
func New(opts ...Option) *Server {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	names := make([]string, len(cfg.tenants))
	for i, tc := range cfg.tenants {
		if tc.Name == "" {
			panic("serve: tenant name must be non-empty")
		}
		if tc.Weight < 1 {
			panic("serve: tenant weight must be ≥ 1")
		}
		names[i] = tc.Name
	}
	s := &Server{
		cfg:      cfg,
		sched:    sched.New(append([]sched.Option{sched.WithChaseLev()}, cfg.schedOpts...)...),
		sink:     telemetry.NewServeSink(names),
		notify:   make(chan struct{}, 1),
		drainCh:  make(chan struct{}),
		killed:   make(chan struct{}),
		pumpDone: make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.byName = make(map[string]*tenant, len(cfg.tenants))
	for i, tc := range cfg.tenants {
		cap := tc.QueueCap
		if cap <= 0 {
			cap = cfg.queueCap
		}
		t := &tenant{
			idx:    i,
			name:   tc.Name,
			weight: tc.Weight,
			queue:  deque.NewArray[*pending](cap),
		}
		s.tenants = append(s.tenants, t)
		s.byName[tc.Name] = t
	}
	if cfg.name != "" {
		s.unreg = telemetry.RegisterServe(cfg.name, s.sink)
	}
	go s.pump()
	return s
}

// Scheduler returns the underlying scheduler (for its Stats; do not
// shut it down directly — Server.Shutdown owns the drain order).
func (s *Server) Scheduler() *sched.Scheduler { return s.sched }

// tenantFor resolves the X-Tenant header; unknown or empty names land
// on the first configured tenant (the catch-all).
func (s *Server) tenantFor(name string) *tenant {
	if t, ok := s.byName[name]; ok {
		return t
	}
	return s.tenants[0]
}

// draining reports whether Shutdown has raised the drain bit.
func (s *Server) draining() bool { return s.ingress.Load()&drainBit != 0 }

// admit joins the ingress word as one queued request; it fails once
// the drain bit is set.  This CAS is where a request's accept-or-503
// decision linearizes against Shutdown — the sched acquire pattern at
// the admission layer.
func (s *Server) admit() bool {
	for {
		old := s.ingress.Load()
		if old&drainBit != 0 {
			return false
		}
		if s.ingress.CompareAndSwap(old, old+1) {
			return true
		}
	}
}

// unadmit undoes admit for a request whose tenant-queue push failed —
// a rejected request leaves nothing behind for the pump to drain.
func (s *Server) unadmit() { s.ingress.Add(^uint64(0)) }

// Shutdown stops admitting requests (new submissions get 503), hands
// every already-admitted request to the scheduler, and drains the
// scheduler — every accepted job runs exactly once and every waiting
// client is answered.  If ctx expires first, Shutdown releases the
// still-waiting clients with 503 (counted as abandoned) and returns
// ctx.Err() while the job drain continues in the background; it may be
// called again to resume waiting.  Idempotent and safe for concurrent
// use.
func (s *Server) Shutdown(ctx context.Context) error {
	s.stopping.Do(func() {
		// Raise the drain bit.  A CAS loop, not ingress.Or: the module's
		// floor toolchain miscompiles value-using atomic Or (see the
		// identical loop in sched.Shutdown and the atomicvalue analyzer).
		old := s.ingress.Load()
		for !s.ingress.CompareAndSwap(old, old|drainBit) {
			old = s.ingress.Load()
		}
		close(s.drainCh)
		go func() {
			<-s.pumpDone
			// Every admitted request has reached the scheduler; drain it
			// with no deadline — the caller-facing deadline is handled
			// below, and the background drain guarantees the jobs run.
			_ = s.sched.Shutdown(context.Background())
			if s.unreg != nil {
				s.unreg()
			}
			close(s.done)
		}()
	})
	select {
	case <-s.done:
		return nil
	case <-ctx.Done():
		s.killing.Do(func() { close(s.killed) })
		return ctx.Err()
	}
}

// pump is the fairness engine: one goroutine doing weighted round-robin
// over the tenant queues into the scheduler.  Blocking sched.Submit is
// the backpressure coupling — a saturated scheduler stalls the pump,
// the tenant queues fill, and the handlers convert the overload into
// 429s at the edge.
func (s *Server) pump() {
	defer close(s.pumpDone)
	for {
		if s.cycle(s.submitOne) {
			continue
		}
		if s.ingress.Load() == drainBit {
			return // draining and every admitted request has reached sched
		}
		if s.draining() {
			// Admitted requests exist (ingress > drainBit) but their pushes
			// haven't landed in a queue yet; yield until they appear.
			runtime.Gosched()
			continue
		}
		select {
		case <-s.notify:
		case <-s.drainCh:
		}
	}
}

// cycle runs one weighted round-robin pass: tenant i gets weight_i
// pops this cycle, each handed to submit in queue (FIFO) order.  It
// reports whether any request moved.  Factored over submit so the
// fairness schedule is unit-testable without a scheduler.
func (s *Server) cycle(submit func(*pending)) bool {
	moved := false
	for _, t := range s.tenants {
		for c := 0; c < t.weight; c++ {
			p, err := t.queue.PopLeft()
			if err != nil {
				break // tenant idle this cycle; its credits don't carry over
			}
			submit(p)
			moved = true
		}
	}
	return moved
}

// submitOne hands one request to the scheduler and retires its ingress
// count.  Submit blocks on a saturated injector (the pump is the one
// caller that wants blocking backpressure) and only fails once the
// scheduler is shut down — which the drain order prevents for admitted
// requests, so the error path is defensive: the waiter is released
// rather than stranded.
func (s *Server) submitOne(p *pending) {
	p.subNs = metrics.Nanotime()
	if err := s.sched.Submit(s.task(p)); err != nil {
		p.done <- result{err: err}
	} else {
		s.sink.Stage(telemetry.StageSubmit, uint64(p.subNs-p.enqNs))
	}
	s.ingress.Add(^uint64(0))
}

// task wraps a pending request as a scheduler task: execute the job,
// stamp the run interval, deliver the result.  The done channel has
// capacity 1 and exactly one sender, so delivery never blocks a worker
// even when the waiter has already been released by a drain deadline.
func (s *Server) task(p *pending) sched.Task {
	return func(w *sched.Worker) {
		start := metrics.Nanotime()
		value, data := p.job.execute()
		end := metrics.Nanotime()
		p.done <- result{
			value:  value,
			data:   data,
			worker: w.ID(),
			runNs:  end - start,
			doneNs: end,
		}
	}
}

// Mux returns the server's full surface on one mux: the job API
// (POST /jobs, GET /healthz) plus the shared exposition endpoints
// (/telemetry, /metrics, /debug/pprof) from ExpositionMux.
func (s *Server) Mux() *http.ServeMux {
	mux := ExpositionMux()
	mux.Handle("/jobs", s)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if s.draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
	return mux
}

// Counts are one tenant's (or the whole server's) admission totals.
// Received == Accepted + RejectedBusy + RejectedDrain and Accepted ==
// Completed + Abandoned, exactly, after quiescence.
type Counts struct {
	Received      uint64 `json:"received"`
	Accepted      uint64 `json:"accepted"`
	RejectedBusy  uint64 `json:"rejected_busy"`
	RejectedDrain uint64 `json:"rejected_drain"`
	Completed     uint64 `json:"completed"`
	Abandoned     uint64 `json:"abandoned"`
}

// TenantStats pair a tenant with its admission totals.
type TenantStats struct {
	Name string `json:"name"`
	Counts
}

// StageStats summarize the four request-stage latency histograms
// (nanoseconds).
type StageStats struct {
	Ingest  deque.HistogramStats `json:"ingest"`
	Submit  deque.HistogramStats `json:"submit"`
	Run     deque.HistogramStats `json:"run"`
	Respond deque.HistogramStats `json:"respond"`
}

// Stats is a point-in-time snapshot of the server's telemetry.
type Stats struct {
	Tenants []TenantStats `json:"tenants"`
	Total   Counts        `json:"total"`
	Stages  StageStats    `json:"stages"`
}

// Stats snapshots the per-tenant admission counters and stage
// latencies.
func (s *Server) Stats() Stats {
	sn := s.sink.Snapshot()
	st := Stats{Total: Counts(sn.Total)}
	for _, tc := range sn.Tenants {
		st.Tenants = append(st.Tenants, TenantStats{Name: tc.Tenant, Counts: Counts(tc.ServeCounts)})
	}
	st.Stages = StageStats{
		Ingest:  histStats(sn.Stages.Ingest),
		Submit:  histStats(sn.Stages.Submit),
		Run:     histStats(sn.Stages.Run),
		Respond: histStats(sn.Stages.Respond),
	}
	return st
}

func histStats(h metrics.HistogramSnapshot) deque.HistogramStats {
	return deque.HistogramStats{
		N: h.N, Sum: h.Sum, Min: h.Min, Max: h.Max,
		P50: h.P50, P90: h.P90, P99: h.P99, P999: h.P999,
	}
}

// Conserved checks the admission conservation law on a quiescent
// snapshot and returns false with the first violated tenant's name if
// it fails anywhere (empty name = the total).
func (st Stats) Conserved() (bool, string) {
	check := func(c Counts) bool {
		return c.Received == c.Accepted+c.RejectedBusy+c.RejectedDrain &&
			c.Accepted == c.Completed+c.Abandoned
	}
	for _, tc := range st.Tenants {
		if !check(tc.Counts) {
			return false, tc.Name
		}
	}
	if !check(st.Total) {
		return false, ""
	}
	return true, ""
}
