# Developer entry points mirroring .github/workflows/ci.yml.

GO ?= go

.PHONY: all build lint test race check

all: check

build:
	$(GO) build ./...

# lint = go vet + the repository's own proof-discipline analyzers
# (atomicmix, lockpath, linpoint, padlayout; see DESIGN.md §7).
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/dequevet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

check: build lint test race
