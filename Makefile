# Developer entry points mirroring .github/workflows/ci.yml.

GO ?= go

.PHONY: all build lint test race check vet-fixtures sched-stress sched-bench chaselev-bench latobs-bench soak-smoke soak serve-smoke serve-stress serve-bench

all: check

build:
	$(GO) build ./...

# lint = go vet + the repository's own proof-discipline analyzers
# (atomicmix, atomicvalue, lockpath, stampwidth, hbpublish, linpoint,
# telemhook, padlayout; see DESIGN.md §7 and §11).
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/dequevet ./...

# The analyzers' own test suites: per-analyzer `// want` fixtures under
# internal/analysis/*/testdata plus the driver's seeded-violation cases.
vet-fixtures:
	$(GO) test ./internal/analysis/... ./cmd/dequevet

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# Randomized scheduler stress certification (bounded; CI runs 300
# race-instrumented, the full certification is -sched-runs 10000).
sched-stress:
	$(GO) run -race ./cmd/dequestress -sched -sched-runs 300

# Scheduler throughput benchmark: workloads × deque backends × worker
# counts, written to BENCH_PR5.json.
sched-bench:
	$(GO) run ./cmd/dequebench -exp sched -workers 1,2,4,8 -json BENCH_PR5.json

# Chase–Lev head-to-head: the same sched grid (the backend set includes
# chaselev), committed as BENCH_PR6.json (EXPERIMENTS.md CHASELEV).
chaselev-bench:
	$(GO) run ./cmd/dequebench -exp sched -ops 50000 -workers 1,2,4,8 -json BENCH_PR6.json

# Latency observability pricing: deque cells at off/telem/lat and sched
# cells at off/lat/lat+trace, with the quantiles the lat cells buy,
# written to BENCH_PR9.json (EXPERIMENTS.md LATOBS).
latobs-bench:
	$(GO) run ./cmd/dequebench -exp latobs -ops 30000 -workers 2,4 -json BENCH_PR9.json

# Memory-bounded soak smoke (CI-required): 90 seconds of race-
# instrumented churn split across every backend × workload cell, with
# quiescent conservation checks at every sample and a full-drain leak
# audit — followed by the known-positive: the seeded LFRC leak (every
# 64th release dropped) must be DETECTED or the step fails.  Artifacts
# (occupancy timeline CSV + flight dump) are written on violation; see
# EXPERIMENTS.md SOAK.
soak-smoke:
	$(GO) run -race ./cmd/dequesoak -d 90s
	$(GO) run -race ./cmd/dequesoak -certify-leak -d 5s

# The full long-haul run (not in CI — run before a release): an hour of
# uninstrumented churn per the same matrix, then the leak certification.
soak:
	$(GO) run ./cmd/dequesoak -d 1h
	$(GO) run ./cmd/dequesoak -certify-leak -d 30s

# Serve smoke (CI-mirrored): dequeserve + dequeload race-instrumented,
# SIGTERM delivered mid-load; dequeserve exits nonzero if the drain
# violates the admission conservation laws.
serve-smoke:
	$(GO) build -race -o /tmp/dequeserve ./cmd/dequeserve
	$(GO) build -race -o /tmp/dequeload ./cmd/dequeload
	rm -f /tmp/serve.addr; \
	/tmp/dequeserve -listen 127.0.0.1:0 -addr-file /tmp/serve.addr -drain 10s & \
	SERVE_PID=$$!; \
	for i in $$(seq 100); do [ -s /tmp/serve.addr ] && break; sleep 0.1; done; \
	/tmp/dequeload -url "http://$$(cat /tmp/serve.addr)/jobs" -mode open -rate 300 \
	  -duration 6s -kind fib -n 25 -verify -tenants free:1,gold:3 & \
	LOAD_PID=$$!; \
	sleep 3; kill -TERM $$SERVE_PID; \
	wait $$LOAD_PID || true; wait $$SERVE_PID

# Randomized serve fault certification (CI runs 200 race-instrumented;
# the full certificate is -serve-runs 1000, also embedded in the
# dequebench serve report).
serve-stress:
	$(GO) run -race ./cmd/dequestress -serve -serve-runs 200

# Serving benchmark: closed-loop capacity calibration, open-loop sweep
# at 0.5C/0.9C/1.5C per backend, and the fault certificate, written to
# BENCH_SERVE.json (EXPERIMENTS.md SERVE).
serve-bench:
	$(GO) run ./cmd/dequebench -exp serve -serve-duration 2s -serve-cert 1000 -json BENCH_SERVE.json

check: build lint test race
