module dcasdeque

go 1.22
