module dcasdeque

go 1.23
