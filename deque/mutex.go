package deque

import (
	"dcasdeque/internal/baseline/mutexdeque"
	"dcasdeque/internal/spec"
)

// Mutex is the blocking baseline: a ring-buffer deque of T protected by a
// single mutex, exposed with the same interface so applications and
// benchmarks can swap implementations.  Create with NewMutex.
type Mutex[T any] struct {
	core *mutexdeque.Deque
	// slotted exactly like the DCAS deques so comparisons measure
	// synchronization, not boxing strategy.
	slots []T
	free  chan int
}

// NewMutex returns an empty mutex-based deque with the given capacity.
func NewMutex[T any](capacity int) *Mutex[T] {
	if capacity < 1 {
		panic("deque: capacity must be ≥ 1")
	}
	// Slot headroom beyond capacity: pushes box before discovering the
	// deque is full, so concurrent losing pushes need slots too.
	nslots := 2*capacity + 64
	m := &Mutex[T]{
		core:  mutexdeque.New(capacity),
		slots: make([]T, nslots),
		free:  make(chan int, nslots),
	}
	for i := 0; i < nslots; i++ {
		m.free <- i
	}
	return m
}

// Cap reports the deque's capacity.
func (d *Mutex[T]) Cap() int { return d.core.Cap() }

func (d *Mutex[T]) box(v T) (uint64, bool) {
	select {
	case i := <-d.free:
		d.slots[i] = v
		return uint64(i) + 1, true
	default:
		return 0, false
	}
}

func (d *Mutex[T]) unbox(h uint64) T {
	i := int(h - 1)
	v := d.slots[i]
	var zero T
	d.slots[i] = zero
	d.free <- i
	return v
}

// PushLeft implements Deque.
func (d *Mutex[T]) PushLeft(v T) error {
	h, ok := d.box(v)
	if !ok {
		return ErrFull
	}
	if d.core.PushLeft(h) == spec.Full {
		d.unbox(h)
		return ErrFull
	}
	return nil
}

// PushRight implements Deque.
func (d *Mutex[T]) PushRight(v T) error {
	h, ok := d.box(v)
	if !ok {
		return ErrFull
	}
	if d.core.PushRight(h) == spec.Full {
		d.unbox(h)
		return ErrFull
	}
	return nil
}

// PopLeft implements Deque.
func (d *Mutex[T]) PopLeft() (T, error) {
	h, r := d.core.PopLeft()
	if r == spec.Empty {
		var zero T
		return zero, ErrEmpty
	}
	return d.unbox(h), nil
}

// PopRight implements Deque.
func (d *Mutex[T]) PopRight() (T, error) {
	h, r := d.core.PopRight()
	if r == spec.Empty {
		var zero T
		return zero, ErrEmpty
	}
	return d.unbox(h), nil
}

var _ Deque[int] = (*Mutex[int])(nil)
