package deque

import (
	"sync/atomic"
	"unsafe"

	"dcasdeque/internal/baseline/mutexdeque"
	"dcasdeque/internal/metrics"
	"dcasdeque/internal/spec"
	"dcasdeque/internal/telemetry"
)

// Mutex is the blocking baseline: a ring-buffer deque of T protected by a
// single mutex, exposed with the same interface so applications and
// benchmarks can swap implementations.  Create with NewMutex.
type Mutex[T any] struct {
	core *mutexdeque.Deque
	// slotted exactly like the DCAS deques so comparisons measure
	// synchronization, not boxing strategy.
	slots []T
	free  chan int
	inst  *instruments
	lat   bool // inst non-nil with latency enabled: stamp operations

	bound     uint64 // WithMemoryBound budget; 0 = unbounded
	slotBytes uint64
	// Wrapper-level slot ledger, mirroring the arena counters so the
	// baseline reports Mem in the same shape (there is no arena
	// underneath).  live is independent of allocs−frees, keeping the
	// conservation invariant a real crosscheck here too.
	memAllocs atomic.Uint64
	memFrees  atomic.Uint64
	memLive   atomic.Int64
	memHW     atomic.Int64
}

// NewMutex returns an empty mutex-based deque with the given capacity.
// Only the telemetry options apply; the DCAS and algorithm-variant
// options are meaningless for the blocking baseline and are ignored.
// Telemetry counts operations and boundary hits at the wrapper layer
// (there are no DCAS attempts or retries to attribute — the core holds a
// lock instead).
func NewMutex[T any](capacity int, opts ...Option) *Mutex[T] {
	if capacity < 1 {
		panic("deque: capacity must be ≥ 1")
	}
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	var inst *instruments
	if cfg.telemetry {
		inst = newInstruments(cfg.telemetryName, cfg.latency)
	}
	// Slot headroom beyond capacity: pushes box before discovering the
	// deque is full, so concurrent losing pushes need slots too.
	nslots := 2*capacity + 64
	var probe T
	m := &Mutex[T]{
		core:      mutexdeque.New(capacity),
		slots:     make([]T, nslots),
		free:      make(chan int, nslots),
		bound:     cfg.memBound,
		slotBytes: uint64(unsafe.Sizeof(probe)),
		inst:      inst,
		lat:       cfg.latency,
	}
	for i := 0; i < nslots; i++ {
		m.free <- i
	}
	inst.bind(m.memSnapshot)
	return m
}

// note records a completed operation when telemetry is enabled.  start
// is the operation's entry stamp (tstart), 0 when latency is off; the
// baseline has no retries, so the spin histogram stays empty and the
// op histogram measures lock-acquisition plus boxing.
func (d *Mutex[T]) note(end telemetry.End, outcome telemetry.Counter, start int64) {
	if d.inst != nil {
		d.inst.sink.OpTimed(end, outcome, 0, start)
	}
}

// tstart stamps an operation's entry when latency recording is enabled;
// 0 otherwise, so the disabled path never reads the clock.
func (d *Mutex[T]) tstart() int64 {
	if d.lat {
		return metrics.Nanotime()
	}
	return 0
}

// Stats returns the deque's telemetry snapshot; ok is false (and the
// snapshot zero) unless the deque was built with WithTelemetry or
// WithTelemetryName.
func (d *Mutex[T]) Stats() (Stats, bool) {
	if d.inst == nil {
		return Stats{}, false
	}
	return d.inst.stats(), true
}

// CloseTelemetry removes the deque from the process-wide exporter if it
// was registered with WithTelemetryName.  Stats keeps working; only the
// exporter entry is dropped.  Safe to call regardless of configuration.
func (d *Mutex[T]) CloseTelemetry() { d.inst.close() }

// Cap reports the deque's capacity.
func (d *Mutex[T]) Cap() int { return d.core.Cap() }

func (d *Mutex[T]) box(v T) (uint64, bool) {
	select {
	case i := <-d.free:
		d.slots[i] = v
		d.memAllocs.Add(1)
		if l := d.memLive.Add(1); l > d.memHW.Load() {
			d.memHW.Store(l) // racy max, same discipline as the arena's
		}
		return uint64(i) + 1, true
	default:
		return 0, false
	}
}

func (d *Mutex[T]) unbox(h uint64) T {
	i := int(h - 1)
	v := d.slots[i]
	var zero T
	d.slots[i] = zero
	d.memLive.Add(-1)
	d.memFrees.Add(1)
	d.free <- i
	return v
}

// PushLeft implements Deque.
func (d *Mutex[T]) PushLeft(v T) error {
	start := d.tstart()
	if err := d.admit(); err != nil {
		return err
	}
	h, ok := d.box(v)
	if !ok {
		d.note(telemetry.Left, telemetry.FullHits, start)
		return ErrFull
	}
	if d.core.PushLeft(h) == spec.Full {
		d.unbox(h)
		d.note(telemetry.Left, telemetry.FullHits, start)
		return ErrFull
	}
	d.note(telemetry.Left, telemetry.Pushes, start)
	return nil
}

// PushRight implements Deque.
func (d *Mutex[T]) PushRight(v T) error {
	start := d.tstart()
	if err := d.admit(); err != nil {
		return err
	}
	h, ok := d.box(v)
	if !ok {
		d.note(telemetry.Right, telemetry.FullHits, start)
		return ErrFull
	}
	if d.core.PushRight(h) == spec.Full {
		d.unbox(h)
		d.note(telemetry.Right, telemetry.FullHits, start)
		return ErrFull
	}
	d.note(telemetry.Right, telemetry.Pushes, start)
	return nil
}

// PopLeft implements Deque.
func (d *Mutex[T]) PopLeft() (T, error) {
	start := d.tstart()
	h, r := d.core.PopLeft()
	if r == spec.Empty {
		d.note(telemetry.Left, telemetry.EmptyHits, start)
		var zero T
		return zero, ErrEmpty
	}
	v := d.unbox(h)
	d.note(telemetry.Left, telemetry.Pops, start)
	return v, nil
}

// PopRight implements Deque.
func (d *Mutex[T]) PopRight() (T, error) {
	start := d.tstart()
	h, r := d.core.PopRight()
	if r == spec.Empty {
		d.note(telemetry.Right, telemetry.EmptyHits, start)
		var zero T
		return zero, ErrEmpty
	}
	v := d.unbox(h)
	d.note(telemetry.Right, telemetry.Pops, start)
	return v, nil
}

var _ Deque[int] = (*Mutex[int])(nil)
