package deque

import (
	"dcasdeque/internal/arena"
	"dcasdeque/internal/core/listdeque"
	"dcasdeque/internal/dcas"
	"dcasdeque/internal/spec"
)

// listCore is the operation vocabulary shared by the two list-deque
// representations: the deleted-bit core (Section 4 main text) and the
// dummy-node core (Figure 10, footnote 4).
type listCore interface {
	PushLeft(v uint64) spec.Result
	PushRight(v uint64) spec.Result
	PopLeft() (uint64, spec.Result)
	PopRight() (uint64, spec.Result)
	PopLeftMany(out []uint64) int
	PopRightMany(out []uint64) int
	Items() ([]uint64, error)
	// Compact completes pending physical deletions on both ends, freeing
	// spliced-out nodes (and retired dummies) now instead of at the next
	// same-side operation.
	Compact()
	// Occupancy returns the node arena's allocation ledger.
	Occupancy() arena.Occupancy
}

// List is the unbounded linked-list DCAS deque of Section 4, carrying
// elements of type T.  Create with NewList.  All methods are safe for
// concurrent use.
type List[T any] struct {
	core  listCore
	slots *arena.Arena[T]
	lfrc  bool   // core is the LFRC representation (Mem attribution)
	bound uint64 // WithMemoryBound budget; 0 = unbounded
	// nodeBytes is the core's per-node footprint, cached for the bound's
	// headroom estimate (a push costs one slot plus one node).
	nodeBytes uint64
	inst      *instruments
}

// WithDummyNodes selects the Figure 10 representation for NewList: the
// logical-deletion mark is carried by indirection through "delete-bit"
// dummy nodes instead of a flag bit packed into the sentinel pointers.
// Semantically identical; exists for hardware without spare pointer bits.
// Incompatible with WithEagerDelete (ignored if both are given).
func WithDummyNodes() Option {
	return func(c *config) { c.dummyNodes = true }
}

// WithLFRC selects lock-free reference counting for node reclamation
// (the methodology of the paper's reference [12]): every node carries a
// count of shared and local references and is reclaimed deterministically
// when the last one disappears, instead of relying on the arena's gc or
// tagged-reuse modes.  Incompatible with WithEagerDelete and
// WithDummyNodes (LFRC wins if combined).
func WithLFRC() Option {
	return func(c *config) { c.lfrc = true }
}

// NewList returns an empty list-based deque.  Pushes fail with ErrFull
// only if the internal node arena is exhausted (see WithMaxNodes).
func NewList[T any](opts ...Option) *List[T] {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	var prov dcas.Provider
	switch {
	case cfg.globalLockDCAS:
		prov = new(dcas.GlobalLock)
	case (cfg.bitLockDCAS || cfg.endLockDCAS) && !cfg.lfrc:
		// LFRC mixes per-location CAS on reference counts with DCAS on the
		// same locations, which only the per-location emulation linearizes.
		// EndLock falls back to the bit table here: list-deque link words
		// appear on both sides of DCAS pairs, outside EndLock's
		// anchored-pair contract.
		prov = new(dcas.BitLock)
	}
	var inst *instruments
	if cfg.telemetry {
		inst = newInstruments(cfg.telemetryName, cfg.latency)
		prov, cfg.backoff = inst.instrument(prov, cfg.backoff)
	}
	coreOpts := []listdeque.Option{
		listdeque.WithMaxNodes(cfg.maxNodes + 2), // + the two sentinels
		listdeque.WithNodeReuse(cfg.nodeReuse),
		listdeque.WithBackoff(cfg.backoff),
	}
	if prov != nil {
		coreOpts = append(coreOpts, listdeque.WithProvider(prov))
	}
	if inst != nil {
		coreOpts = append(coreOpts, listdeque.WithTelemetry(inst.sink))
	}
	var core listCore
	switch {
	case cfg.lfrc:
		core = listdeque.NewLFRC(coreOpts...)
	case cfg.dummyNodes:
		core = listdeque.NewDummy(coreOpts...)
	default:
		core = listdeque.New(append(coreOpts,
			listdeque.WithEagerDelete(cfg.eagerDelete))...)
	}
	d := &List[T]{
		core:      core,
		slots:     arena.New[T](cfg.maxNodes, arena.WithReuse(cfg.nodeReuse)),
		lfrc:      cfg.lfrc,
		bound:     cfg.memBound,
		nodeBytes: core.Occupancy().SlotBytes,
		inst:      inst,
	}
	inst.bind(d.memSnapshot)
	return d
}

// Stats returns the deque's telemetry snapshot; ok is false (and the
// snapshot zero) unless the deque was built with WithTelemetry or
// WithTelemetryName.
func (d *List[T]) Stats() (Stats, bool) {
	if d.inst == nil {
		return Stats{}, false
	}
	return d.inst.stats(), true
}

// CloseTelemetry removes the deque from the process-wide exporter if it
// was registered with WithTelemetryName.  Stats keeps working; only the
// exporter entry is dropped.  Safe to call regardless of configuration.
func (d *List[T]) CloseTelemetry() { d.inst.close() }

func (d *List[T]) box(v T) (uint64, bool) {
	idx, ok := d.slots.Alloc()
	if !ok {
		return 0, false
	}
	*d.slots.Get(idx) = v
	return d.slots.Handle(idx), true
}

func (d *List[T]) unbox(h uint64) T {
	idx, ok := d.slots.Resolve(h)
	if !ok {
		panic("deque: popped handle does not resolve (corrupt state)")
	}
	p := d.slots.Get(idx)
	v := *p
	var zero T
	*p = zero
	d.slots.Free(idx)
	return v
}

func (d *List[T]) releaseUnpushed(h uint64) {
	idx, ok := d.slots.Resolve(h)
	if !ok {
		panic("deque: unpushed handle does not resolve")
	}
	var zero T
	*d.slots.Get(idx) = zero
	d.slots.Free(idx)
}

// PushLeft implements Deque.
func (d *List[T]) PushLeft(v T) error {
	if err := d.admit(); err != nil {
		return err
	}
	h, ok := d.box(v)
	if !ok {
		return ErrFull
	}
	if d.core.PushLeft(h) == spec.Full {
		d.releaseUnpushed(h)
		return ErrFull
	}
	return nil
}

// PushRight implements Deque.
func (d *List[T]) PushRight(v T) error {
	if err := d.admit(); err != nil {
		return err
	}
	h, ok := d.box(v)
	if !ok {
		return ErrFull
	}
	if d.core.PushRight(h) == spec.Full {
		d.releaseUnpushed(h)
		return ErrFull
	}
	return nil
}

// PopLeft implements Deque.
func (d *List[T]) PopLeft() (T, error) {
	h, r := d.core.PopLeft()
	if r == spec.Empty {
		var zero T
		return zero, ErrEmpty
	}
	return d.unbox(h), nil
}

// PopRight implements Deque.
func (d *List[T]) PopRight() (T, error) {
	h, r := d.core.PopRight()
	if r == spec.Empty {
		var zero T
		return zero, ErrEmpty
	}
	return d.unbox(h), nil
}

// Compact completes the deque's deferred physical deletions on both
// ends now, freeing spliced-out nodes (and retired dummies) instead of
// leaving them to the next same-side operation.  Bounded deques run the
// same pass automatically before rejecting a push with ErrMemoryBound;
// calling it directly is useful before reading Mem at a quiescent point.
// Safe for concurrent use.
func (d *List[T]) Compact() { d.core.Compact() }

// Items returns the deque's contents left to right.  It must only be
// called while no operations are in flight (tests, diagnostics).
func (d *List[T]) Items() ([]T, error) {
	hs, err := d.core.Items()
	if err != nil {
		return nil, err
	}
	out := make([]T, 0, len(hs))
	for _, h := range hs {
		idx, ok := d.slots.Resolve(h)
		if !ok {
			panic("deque: stored handle does not resolve")
		}
		out = append(out, *d.slots.Get(idx))
	}
	return out, nil
}

var _ Deque[int] = (*List[int])(nil)
