package deque

import (
	"dcasdeque/internal/arena"
	"dcasdeque/internal/telemetry"
)

// ArenaStats is one internal arena's allocation ledger: the occupancy
// counters behind the conservation invariant
//
//	Allocs == Live + Frees + Retired
//
// plus the live high-water mark and slab footprint.  Snapshots taken
// while operations are in flight may straddle one (the counters are read
// individually); quiescent snapshots are exact.
type ArenaStats struct {
	Allocs    uint64 `json:"allocs"`     // successful allocations
	Frees     uint64 `json:"frees"`      // slots recycled through the freelist
	Retired   uint64 `json:"retired"`    // slots permanently retired (gc mode)
	Live      int64  `json:"live"`       // currently allocated slots
	HighWater int64  `json:"high_water"` // maximum Live ever observed
	Slabs     uint64 `json:"slabs"`      // storage blocks published (monotone)
	SlabBytes uint64 `json:"slab_bytes"` // bytes held by published blocks
	SlotBytes uint64 `json:"slot_bytes"` // per-slot footprint
	Cap       uint64 `json:"cap"`        // slot capacity
}

// RingStats is the Chase–Lev backend's ring-chain ledger.  Rings retire
// and never recycle, so conservation here is Rings == Retired + 1.
type RingStats struct {
	Rings   uint64 `json:"rings"`   // rings ever allocated
	Retired uint64 `json:"retired"` // rings retired behind the active one
	Cells   uint64 `json:"cells"`   // active ring's cell count
	Bytes   uint64 `json:"bytes"`   // bytes retained by the whole chain
}

// MemStats is a deque's memory-occupancy snapshot: the element-slot
// arena every backend has, plus whichever auxiliary structure the
// backend uses — list nodes (Nodes), LFRC reference-counted nodes
// (Lfrc), or the Chase–Lev ring chain (Rings).  Unused components are
// nil.
type MemStats struct {
	Slots ArenaStats  `json:"slots"`
	Nodes *ArenaStats `json:"nodes,omitempty"`
	Lfrc  *ArenaStats `json:"lfrc,omitempty"`
	Rings *RingStats  `json:"rings,omitempty"`
}

// Conserved checks every component's conservation invariant, returning
// nil when all hold.  Exact only on quiescent snapshots; see ArenaStats.
func (m MemStats) Conserved() error { return m.snapshot().Conserved() }

// LiveBytes estimates the bytes held live: live slots across every arena
// plus the retained ring chain.  This is the quantity WithMemoryBound
// budgets.
func (m MemStats) LiveBytes() uint64 { return m.snapshot().LiveBytes() }

// snapshot converts back to the internal representation the invariant
// logic is written against.
func (m MemStats) snapshot() telemetry.MemSnapshot {
	s := telemetry.MemSnapshot{Slots: arena.Occupancy(m.Slots)}
	if m.Nodes != nil {
		o := arena.Occupancy(*m.Nodes)
		s.Nodes = &o
	}
	if m.Lfrc != nil {
		o := arena.Occupancy(*m.Lfrc)
		s.Lfrc = &o
	}
	if m.Rings != nil {
		r := telemetry.RingCounts(*m.Rings)
		s.Rings = &r
	}
	return s
}

// memStatsOf converts an internal snapshot to the public mirror.
func memStatsOf(s telemetry.MemSnapshot) MemStats {
	m := MemStats{Slots: ArenaStats(s.Slots)}
	if s.Nodes != nil {
		o := ArenaStats(*s.Nodes)
		m.Nodes = &o
	}
	if s.Lfrc != nil {
		o := ArenaStats(*s.Lfrc)
		m.Lfrc = &o
	}
	if s.Rings != nil {
		r := RingStats(*s.Rings)
		m.Rings = &r
	}
	return m
}

// admitMem is the WithMemoryBound admission check shared by the push
// paths: over budget, try compaction (compact may be nil when the
// backend has nothing to give back), then re-check and reject.  The
// check runs before the element is boxed, so a rejected push allocates
// nothing.  Concurrent pushes admit against the same counters without
// mutual exclusion, so the bound can be overshot by at most one
// in-flight push per concurrent pusher — a policy limit, not a safety
// line.
func admitMem(bound uint64, liveBytes func() uint64, need uint64, compact func()) error {
	if liveBytes()+need <= bound {
		return nil
	}
	if compact != nil {
		compact()
		if liveBytes()+need <= bound {
			return nil
		}
	}
	return ErrMemoryBound
}

// --- per-backend Mem and bound wiring ---

// Mem returns the deque's memory-occupancy snapshot.  Always available,
// independent of the telemetry options.
func (d *Array[T]) Mem() MemStats { return memStatsOf(d.memSnapshot()) }

func (d *Array[T]) memSnapshot() telemetry.MemSnapshot {
	return telemetry.MemSnapshot{Slots: d.slots.Occupancy()}
}

func (d *Array[T]) liveBytes() uint64 {
	o := d.slots.Occupancy()
	return o.LiveBytes()
}

// admit applies the memory bound, if armed, before a push boxes its
// element.  The array deque has no compaction step: its cell storage is
// fixed and its slots recycle immediately on pop.
func (d *Array[T]) admit() error {
	if d.bound == 0 {
		return nil
	}
	return admitMem(d.bound, d.liveBytes, d.slots.SlotBytes(), nil)
}

// Mem returns the deque's memory-occupancy snapshot.  Always available,
// independent of the telemetry options.
func (d *List[T]) Mem() MemStats { return memStatsOf(d.memSnapshot()) }

func (d *List[T]) memSnapshot() telemetry.MemSnapshot {
	m := telemetry.MemSnapshot{Slots: d.slots.Occupancy()}
	no := d.core.Occupancy()
	if d.lfrc {
		m.Lfrc = &no
	} else {
		m.Nodes = &no
	}
	return m
}

func (d *List[T]) liveBytes() uint64 {
	so := d.slots.Occupancy()
	no := d.core.Occupancy()
	return so.LiveBytes() + no.LiveBytes()
}

// admit applies the memory bound, if armed.  Over budget the list deque
// compacts first: completing the deferred physical deletions frees the
// spliced-out nodes (and, in the dummy representation, retired dummies)
// that pops left behind.
func (d *List[T]) admit() error {
	if d.bound == 0 {
		return nil
	}
	need := d.slots.SlotBytes() + d.nodeBytes
	return admitMem(d.bound, d.liveBytes, need, d.core.Compact)
}

// Mem returns the deque's memory-occupancy snapshot.  Always available,
// independent of the telemetry options.
func (d *ChaseLev[T]) Mem() MemStats { return memStatsOf(d.memSnapshot()) }

func (d *ChaseLev[T]) memSnapshot() telemetry.MemSnapshot {
	r := d.core.Rings()
	return telemetry.MemSnapshot{Slots: d.slots.Occupancy(), Rings: &r}
}

func (d *ChaseLev[T]) liveBytes() uint64 {
	o := d.slots.Occupancy()
	return o.LiveBytes() + d.core.Rings().Bytes
}

// admit applies the memory bound, if armed.  Rings retire and never
// shrink, so there is no compaction; the retained chain simply counts
// against the budget.
func (d *ChaseLev[T]) admit() error {
	if d.bound == 0 {
		return nil
	}
	return admitMem(d.bound, d.liveBytes, d.slots.SlotBytes(), nil)
}

// Mem returns the deque's memory-occupancy snapshot.  The mutex baseline
// has no internal arena; its wrapper-level slot ledger is reported in
// the same shape (one slab: the slot array allocated at construction).
func (d *Mutex[T]) Mem() MemStats { return memStatsOf(d.memSnapshot()) }

func (d *Mutex[T]) memSnapshot() telemetry.MemSnapshot {
	return telemetry.MemSnapshot{Slots: arena.Occupancy{
		Frees:     d.memFrees.Load(),
		Live:      d.memLive.Load(),
		HighWater: d.memHW.Load(),
		Allocs:    d.memAllocs.Load(),
		Slabs:     1,
		SlabBytes: uint64(len(d.slots)) * d.slotBytes,
		SlotBytes: d.slotBytes,
		Cap:       uint64(len(d.slots)),
	}}
}

func (d *Mutex[T]) liveBytes() uint64 {
	return uint64(d.memLive.Load()) * d.slotBytes
}

// admit applies the memory bound, if armed; the mutex baseline has no
// compaction step.
func (d *Mutex[T]) admit() error {
	if d.bound == 0 {
		return nil
	}
	return admitMem(d.bound, d.liveBytes, d.slotBytes, nil)
}
