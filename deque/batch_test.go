package deque

import (
	"sync"
	"testing"
)

// batchTargets builds one deque per implementation/variant for the
// batch-pop tests, telemetry enabled so batched counting is exercised.
func batchTargets(t *testing.T) map[string]Deque[int] {
	t.Helper()
	return map[string]Deque[int]{
		"array":      NewArray[int](1024, WithTelemetry()),
		"list":       NewList[int](WithTelemetry()),
		"list-dummy": NewList[int](WithDummyNodes(), WithTelemetry()),
		"list-lfrc":  NewList[int](WithLFRC(), WithTelemetry()),
		"mutex":      NewMutex[int](1024, WithTelemetry()),
	}
}

func TestPopLManyOrder(t *testing.T) {
	for name, d := range batchTargets(t) {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 10; i++ {
				if err := d.PushRight(i); err != nil {
					t.Fatal(err)
				}
			}
			got := d.PopLMany(4)
			if want := []int{0, 1, 2, 3}; !equal(got, want) {
				t.Fatalf("PopLMany(4) = %v, want %v", got, want)
			}
			// Remaining elements still pop in order from either end.
			if v, err := d.PopLeft(); err != nil || v != 4 {
				t.Fatalf("PopLeft after batch = %d, %v; want 4", v, err)
			}
			if v, err := d.PopRight(); err != nil || v != 9 {
				t.Fatalf("PopRight after batch = %d, %v; want 9", v, err)
			}
		})
	}
}

func TestPopRManyOrder(t *testing.T) {
	for name, d := range batchTargets(t) {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 10; i++ {
				if err := d.PushRight(i); err != nil {
					t.Fatal(err)
				}
			}
			got := d.PopRMany(4)
			if want := []int{9, 8, 7, 6}; !equal(got, want) {
				t.Fatalf("PopRMany(4) = %v, want %v", got, want)
			}
		})
	}
}

func TestPopManyShortAndEmpty(t *testing.T) {
	for name, d := range batchTargets(t) {
		t.Run(name, func(t *testing.T) {
			if got := d.PopLMany(8); got != nil {
				t.Fatalf("PopLMany on empty = %v, want nil", got)
			}
			if got := d.PopRMany(8); got != nil {
				t.Fatalf("PopRMany on empty = %v, want nil", got)
			}
			if got := d.PopLMany(0); got != nil {
				t.Fatalf("PopLMany(0) = %v, want nil", got)
			}
			if got := d.PopLMany(-3); got != nil {
				t.Fatalf("PopLMany(-3) = %v, want nil", got)
			}
			for i := 0; i < 3; i++ {
				if err := d.PushLeft(i); err != nil {
					t.Fatal(err)
				}
			}
			// max beyond the population: return what is there, stop at empty.
			if got, want := d.PopRMany(100), []int{0, 1, 2}; !equal(got, want) {
				t.Fatalf("PopRMany(100) = %v, want %v", got, want)
			}
		})
	}
}

// TestPopManyBeyondChunk drains a population larger than the internal
// chunk buffer in one call, covering the chunked-refill path.
func TestPopManyBeyondChunk(t *testing.T) {
	const n = popManyChunk*2 + 17
	for name, d := range map[string]Deque[int]{
		"list":  NewList[int](),
		"mutex": NewMutex[int](n, WithTelemetry()),
	} {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < n; i++ {
				if err := d.PushRight(i); err != nil {
					t.Fatal(err)
				}
			}
			got := d.PopLMany(n)
			if len(got) != n {
				t.Fatalf("PopLMany(%d) returned %d elements", n, len(got))
			}
			for i, v := range got {
				if v != i {
					t.Fatalf("got[%d] = %d, want %d", i, v, i)
				}
			}
		})
	}
}

// TestPopManyConcurrent races a batch-stealing thief against an owner
// pushing and popping its own right end; every pushed value must be
// consumed exactly once between the two.
func TestPopManyConcurrent(t *testing.T) {
	for name, d := range batchTargets(t) {
		t.Run(name, func(t *testing.T) {
			const total = 20000
			seen := make([]int32, total)
			var wg sync.WaitGroup
			wg.Add(2)
			go func() { // owner: push all, pop some of its own
				defer wg.Done()
				for i := 0; i < total; i++ {
					for d.PushRight(i) != nil {
						// Full (the thief may already be done): make room
						// by consuming own work instead of spinning.
						if v, err := d.PopRight(); err == nil {
							seen[v]++
						}
					}
					if i%3 == 0 {
						if v, err := d.PopRight(); err == nil {
							seen[v]++
						}
					}
				}
			}()
			var stolen []int
			go func() { // thief: batch-steal from the left
				defer wg.Done()
				for i := 0; i < total; i++ {
					stolen = append(stolen, d.PopLMany(1+i%7)...)
				}
			}()
			wg.Wait()
			for _, v := range stolen {
				seen[v]++
			}
			for len(stolen) < total { // drain the remainder
				rest := d.PopLMany(64)
				if rest == nil {
					break
				}
				stolen = append(stolen, rest...)
				for _, v := range rest {
					seen[v]++
				}
			}
			// Conservation: every value consumed exactly once overall.
			var consumed int
			for v, c := range seen {
				if c > 1 {
					t.Fatalf("value %d consumed %d times", v, c)
				}
				consumed += int(c)
			}
			rem, err := itemsOf(d)
			if err != nil {
				t.Fatal(err)
			}
			if consumed+len(rem) != total {
				t.Fatalf("conservation: consumed %d + remaining %d ≠ %d",
					consumed, len(rem), total)
			}
		})
	}
}

// itemsOf snapshots a deque's contents via the concrete Items method.
func itemsOf(d Deque[int]) ([]int, error) {
	switch v := d.(type) {
	case *Array[int]:
		return v.Items()
	case *List[int]:
		return v.Items()
	case *Mutex[int]:
		out := []int{}
		for {
			batch := v.PopLMany(64)
			if batch == nil {
				return out, nil
			}
			out = append(out, batch...)
		}
	}
	return nil, nil
}

func equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
