package deque

import (
	"errors"
	"sync"
	"testing"
)

// batchBackends enumerates every public constructor for the batch-pop
// table tests; mk builds a fresh deque per case so no case sees another's
// leftovers.  canPushLeft is false for Chase–Lev, whose left end is
// steal-only (PushLeft returns ErrUnsupported).
var batchBackends = []struct {
	name        string
	mk          func() Deque[int]
	canPushLeft bool
}{
	{"array", func() Deque[int] { return NewArray[int](1024, WithTelemetry()) }, true},
	{"list", func() Deque[int] { return NewList[int](WithTelemetry()) }, true},
	{"list-dummy", func() Deque[int] { return NewList[int](WithDummyNodes(), WithTelemetry()) }, true},
	{"list-lfrc", func() Deque[int] { return NewList[int](WithLFRC(), WithTelemetry()) }, true},
	{"mutex", func() Deque[int] { return NewMutex[int](1024, WithTelemetry()) }, true},
	{"chaselev", func() Deque[int] { return NewChaseLev[int](WithTelemetry()) }, false},
}

// seed fills the deque so it reads vals left-to-right, feeding the left
// end where the backend supports it so both feed paths are exercised.
func seed(t *testing.T, d Deque[int], canPushLeft bool, vals []int) {
	t.Helper()
	if canPushLeft {
		for i := len(vals) - 1; i >= 0; i-- {
			if err := d.PushLeft(vals[i]); err != nil {
				t.Fatal(err)
			}
		}
		return
	}
	for _, v := range vals {
		if err := d.PushRight(v); err != nil {
			t.Fatal(err)
		}
	}
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// TestPopManyTable checks PopLMany/PopRMany ordering, max clamping and
// the max ≤ 0 and empty-deque edge cases across every backend.
func TestPopManyTable(t *testing.T) {
	cases := []struct {
		name string
		seed []int
		left bool // PopLMany when true, PopRMany when false
		max  int
		want []int
	}{
		{"L-order", seq(10), true, 4, []int{0, 1, 2, 3}},
		{"R-order", seq(10), false, 4, []int{9, 8, 7, 6}},
		{"L-clamp", seq(3), true, 100, []int{0, 1, 2}},
		{"R-clamp", seq(3), false, 100, []int{2, 1, 0}},
		{"L-zero", seq(3), true, 0, nil},
		{"R-zero", seq(3), false, 0, nil},
		{"L-negative", seq(3), true, -3, nil},
		{"R-negative", seq(3), false, -3, nil},
		{"L-empty", nil, true, 8, nil},
		{"R-empty", nil, false, 8, nil},
	}
	for _, b := range batchBackends {
		for _, tc := range cases {
			t.Run(b.name+"/"+tc.name, func(t *testing.T) {
				d := b.mk()
				seed(t, d, b.canPushLeft, tc.seed)
				op, got := "PopLMany", []int(nil)
				if tc.left {
					got = d.PopLMany(tc.max)
				} else {
					op, got = "PopRMany", d.PopRMany(tc.max)
				}
				if !equal(got, tc.want) {
					t.Fatalf("%s(%d) = %v, want %v", op, tc.max, got, tc.want)
				}
			})
		}
	}
}

// TestPopManyResidue checks a batch pop leaves the remaining elements
// popping in order from both ends.
func TestPopManyResidue(t *testing.T) {
	for _, b := range batchBackends {
		t.Run(b.name, func(t *testing.T) {
			d := b.mk()
			seed(t, d, b.canPushLeft, seq(10))
			if got, want := d.PopLMany(4), []int{0, 1, 2, 3}; !equal(got, want) {
				t.Fatalf("PopLMany(4) = %v, want %v", got, want)
			}
			if v, err := d.PopLeft(); err != nil || v != 4 {
				t.Fatalf("PopLeft after batch = %d, %v; want 4", v, err)
			}
			if v, err := d.PopRight(); err != nil || v != 9 {
				t.Fatalf("PopRight after batch = %d, %v; want 9", v, err)
			}
		})
	}
}

// TestChaseLevPushLeftUnsupported pins the documented contract: PushLeft
// fails with ErrUnsupported and leaves the deque untouched.
func TestChaseLevPushLeftUnsupported(t *testing.T) {
	d := NewChaseLev[int]()
	if err := d.PushLeft(1); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("PushLeft = %v, want ErrUnsupported", err)
	}
	if _, err := d.PopLeft(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("deque not empty after rejected PushLeft: %v", err)
	}
}

// TestPopManyBeyondChunk drains a population larger than the internal
// chunk buffer in one call, covering the chunked-refill path (and, for
// Chase–Lev, the chained span-sized batch claims).
func TestPopManyBeyondChunk(t *testing.T) {
	const n = popManyChunk*2 + 17
	for name, d := range map[string]Deque[int]{
		"list":     NewList[int](),
		"mutex":    NewMutex[int](n, WithTelemetry()),
		"chaselev": NewChaseLev[int](),
	} {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < n; i++ {
				if err := d.PushRight(i); err != nil {
					t.Fatal(err)
				}
			}
			got := d.PopLMany(n)
			if len(got) != n {
				t.Fatalf("PopLMany(%d) returned %d elements", n, len(got))
			}
			for i, v := range got {
				if v != i {
					t.Fatalf("got[%d] = %d, want %d", i, v, i)
				}
			}
		})
	}
}

// TestPopManyConcurrent races a batch-stealing thief against an owner
// pushing and popping its own right end; every pushed value must be
// consumed exactly once between the two.  The access pattern — one owner
// on the right, one thief on the left — satisfies every backend's
// contract, including Chase–Lev's owner-only right end.
func TestPopManyConcurrent(t *testing.T) {
	for _, b := range batchBackends {
		t.Run(b.name, func(t *testing.T) {
			d := b.mk()
			const total = 20000
			seen := make([]int32, total)
			var wg sync.WaitGroup
			wg.Add(2)
			go func() { // owner: push all, pop some of its own
				defer wg.Done()
				for i := 0; i < total; i++ {
					for d.PushRight(i) != nil {
						// Full (the thief may already be done): make room
						// by consuming own work instead of spinning.
						if v, err := d.PopRight(); err == nil {
							seen[v]++
						}
					}
					if i%3 == 0 {
						if v, err := d.PopRight(); err == nil {
							seen[v]++
						}
					}
				}
			}()
			var stolen []int
			go func() { // thief: batch-steal from the left
				defer wg.Done()
				for i := 0; i < total; i++ {
					stolen = append(stolen, d.PopLMany(1+i%7)...)
				}
			}()
			wg.Wait()
			for _, v := range stolen {
				seen[v]++
			}
			for len(stolen) < total { // drain the remainder
				rest := d.PopLMany(64)
				if rest == nil {
					break
				}
				stolen = append(stolen, rest...)
				for _, v := range rest {
					seen[v]++
				}
			}
			// Conservation: every value consumed exactly once overall.
			var consumed int
			for v, c := range seen {
				if c > 1 {
					t.Fatalf("value %d consumed %d times", v, c)
				}
				consumed += int(c)
			}
			rem, err := itemsOf(d)
			if err != nil {
				t.Fatal(err)
			}
			if consumed+len(rem) != total {
				t.Fatalf("conservation: consumed %d + remaining %d ≠ %d",
					consumed, len(rem), total)
			}
		})
	}
}

// itemsOf snapshots a deque's contents via the concrete Items method.
func itemsOf(d Deque[int]) ([]int, error) {
	switch v := d.(type) {
	case *Array[int]:
		return v.Items()
	case *List[int]:
		return v.Items()
	case *ChaseLev[int]:
		return v.Items()
	case *Mutex[int]:
		out := []int{}
		for {
			batch := v.PopLMany(64)
			if batch == nil {
				return out, nil
			}
			out = append(out, batch...)
		}
	}
	return nil, nil
}

func equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
