package deque

import (
	"encoding/json"
	"expvar"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestStatsDisabled: without the telemetry options, Stats reports not-ok
// and the wrappers never touch a sink.
func TestStatsDisabled(t *testing.T) {
	d := NewArray[int](4)
	if err := d.PushRight(1); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Stats(); ok {
		t.Fatal("Stats ok on a deque built without WithTelemetry")
	}
	d.CloseTelemetry() // must be a safe no-op
	l := NewList[int]()
	if _, ok := l.Stats(); ok {
		t.Fatal("List Stats ok without WithTelemetry")
	}
	m := NewMutex[int](4)
	if _, ok := m.Stats(); ok {
		t.Fatal("Mutex Stats ok without WithTelemetry")
	}
}

// exercise runs a deterministic single-thread workload whose counter
// totals are known exactly.
func exercise(t *testing.T, d Deque[int]) {
	t.Helper()
	for i := 0; i < 10; i++ {
		if err := d.PushRight(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := d.PushLeft(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		if _, err := d.PopLeft(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		if _, err := d.PopRight(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.PopRight(); err != ErrEmpty {
		t.Fatalf("pop of drained deque: %v", err)
	}
}

func checkExercised(t *testing.T, st Stats, wantDCAS bool) {
	t.Helper()
	if st.Right.Pushes != 10 || st.Left.Pushes != 4 {
		t.Fatalf("pushes = %d right / %d left, want 10/4", st.Right.Pushes, st.Left.Pushes)
	}
	if st.Left.Pops != 6 || st.Right.Pops != 8 {
		t.Fatalf("pops = %d left / %d right, want 6/8", st.Left.Pops, st.Right.Pops)
	}
	if st.Right.EmptyHits != 1 {
		t.Fatalf("right empty hits = %d, want 1", st.Right.EmptyHits)
	}
	if !wantDCAS {
		return
	}
	// 29 completed operations, each linearizing at one successful DCAS at
	// minimum (uncontended, so no failures are required — but attempts
	// must cover the operations).
	if st.DCAS.Attempts < 29 || st.DCAS.Successes < 29 {
		t.Fatalf("DCAS attempts/successes = %d/%d, want ≥ 29", st.DCAS.Attempts, st.DCAS.Successes)
	}
	if len(st.Locations) == 0 {
		t.Fatal("no per-location attribution")
	}
	var locAttempts uint64
	for _, l := range st.Locations {
		locAttempts += l.Attempts
	}
	// Every DCAS touches exactly two locations.
	if locAttempts != 2*st.DCAS.Attempts {
		t.Fatalf("location attempts = %d, want 2×%d", locAttempts, st.DCAS.Attempts)
	}
}

func TestStatsArray(t *testing.T) {
	d := NewArray[int](16, WithTelemetry())
	exercise(t, d)
	st, ok := d.Stats()
	if !ok {
		t.Fatal("Stats not ok with WithTelemetry")
	}
	checkExercised(t, st, true)
	// Full hits: capacity 2 overflows on the third push.
	small := NewArray[int](2, WithTelemetry())
	_ = small.PushRight(1)
	_ = small.PushRight(2)
	if err := small.PushRight(3); err != ErrFull {
		t.Fatalf("overfull push: %v", err)
	}
	sst, _ := small.Stats()
	if sst.Right.FullHits != 1 {
		t.Fatalf("full hits = %d, want 1", sst.Right.FullHits)
	}
}

func TestStatsListVariants(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
		ref  bool
	}{
		{"deleted-bit", nil, false},
		{"dummy", []Option{WithDummyNodes()}, false},
		{"lfrc", []Option{WithLFRC()}, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := NewList[int](append(tc.opts, WithTelemetry())...)
			exercise(t, d)
			st, ok := d.Stats()
			if !ok {
				t.Fatal("Stats not ok with WithTelemetry")
			}
			checkExercised(t, st, true)
			if st.Left.LogicalDeletes != st.Left.Pops || st.Right.LogicalDeletes != st.Right.Pops {
				t.Fatalf("logical deletes %d/%d != pops %d/%d",
					st.Left.LogicalDeletes, st.Right.LogicalDeletes, st.Left.Pops, st.Right.Pops)
			}
			// Every node eventually leaves the list through a physical splice.
			if tot := st.Left.PhysicalDeletes + st.Right.PhysicalDeletes; tot == 0 {
				t.Fatal("no physical deletes recorded")
			}
			if tc.ref && (st.Ref.Incs == 0 || st.Ref.Decs == 0 || st.Ref.Frees == 0) {
				t.Fatalf("LFRC ref counters empty: %+v", st.Ref)
			}
			if !tc.ref && st.Ref != (RefStats{}) {
				t.Fatalf("non-LFRC deque recorded ref events: %+v", st.Ref)
			}
		})
	}
}

func TestStatsMutex(t *testing.T) {
	d := NewMutex[int](16, WithTelemetry())
	exercise(t, d)
	st, ok := d.Stats()
	if !ok {
		t.Fatal("Stats not ok with WithTelemetry")
	}
	checkExercised(t, st, false)
	if st.DCAS.Attempts != 0 {
		t.Fatalf("mutex deque counted DCAS attempts: %d", st.DCAS.Attempts)
	}
}

// TestStatsContended: concurrent traffic on both ends must surface
// retries (the acceptance criterion: per-end DCAS retry counts visible
// through Stats).  The workload hammers a capacity-1 deque, where every
// operation crosses the boundary cell, so any goroutine preempted
// between its read and its DCAS fails that DCAS on resume.  When a
// retry lands is up to the scheduler (on one processor it takes a
// preemption mid-window), so batches repeat under a deadline until one
// is observed.
func TestStatsContended(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	d := NewArray[int](1, WithTelemetry())
	deadline := time.Now().Add(30 * time.Second)
	for {
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 5000; i++ {
					if w%2 == 0 {
						_ = d.PushRight(i)
						_, _ = d.PopRight()
					} else {
						_ = d.PushLeft(i)
						_, _ = d.PopLeft()
					}
				}
			}(w)
		}
		wg.Wait()
		st, _ := d.Stats()
		if st.Left.Retries+st.Right.Retries > 0 && st.DCAS.Failures > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no retries or DCAS failures recorded under contention: %+v", st.DCAS)
		}
	}
}

// TestStatsLatency: WithLatency attaches per-end histograms whose op
// counts match the completed-operation totals, on every backend that
// supports the standard exercise.
func TestStatsLatency(t *testing.T) {
	build := map[string]func() Deque[int]{
		"array":      func() Deque[int] { return NewArray[int](16, WithLatency()) },
		"list":       func() Deque[int] { return NewList[int](WithLatency()) },
		"list-dummy": func() Deque[int] { return NewList[int](WithDummyNodes(), WithLatency()) },
		"list-lfrc":  func() Deque[int] { return NewList[int](WithLFRC(), WithLatency()) },
		"mutex":      func() Deque[int] { return NewMutex[int](16, WithLatency()) },
	}
	for name, mk := range build {
		t.Run(name, func(t *testing.T) {
			d := mk()
			exercise(t, d)
			st, ok := d.(interface{ Stats() (Stats, bool) }).Stats()
			if !ok {
				t.Fatal("Stats not ok with WithLatency (it implies WithTelemetry)")
			}
			checkExercised(t, st, name != "mutex")
			l := st.Latency
			if l == nil {
				t.Fatal("Stats.Latency nil with WithLatency")
			}
			// Every completed operation — successes and boundary hits alike —
			// records one op-latency sample at its flush.
			wantLeft := st.Left.Pushes + st.Left.Pops + st.Left.FullHits + st.Left.EmptyHits
			wantRight := st.Right.Pushes + st.Right.Pops + st.Right.FullHits + st.Right.EmptyHits
			if l.Left.Op.N != wantLeft || l.Right.Op.N != wantRight {
				t.Fatalf("op samples = %d/%d, want %d/%d (left/right)",
					l.Left.Op.N, l.Right.Op.N, wantLeft, wantRight)
			}
			// The spin histogram covers only the contended subpopulation.
			if l.Left.Spin.N > l.Left.Op.N || l.Right.Spin.N > l.Right.Op.N {
				t.Fatalf("spin samples exceed op samples: %+v", l)
			}
			if l.Left.Op.Max < l.Left.Op.Min || l.Left.Op.Sum == 0 {
				t.Fatalf("degenerate left op histogram: %+v", l.Left.Op)
			}
			if m := l.Left.Op.Mean(); m <= 0 {
				t.Fatalf("left op mean = %v", m)
			}
		})
	}
}

// TestStatsLatencyChaseLev: the owner/thief deque records latency on its
// supported operations, including exactly one sample per PopLMany batch.
func TestStatsLatencyChaseLev(t *testing.T) {
	d := NewChaseLev[int](WithLatency())
	for i := 0; i < 10; i++ {
		if err := d.PushRight(i); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.PopRight(); err != nil {
		t.Fatal(err)
	}
	if got := d.PopLMany(4); len(got) != 4 {
		t.Fatalf("PopLMany = %d items, want 4", len(got))
	}
	if err := d.PushLeft(0); err != ErrUnsupported {
		t.Fatalf("PushLeft: %v", err)
	}
	st, ok := d.Stats()
	if !ok || st.Latency == nil {
		t.Fatal("Stats/Latency missing with WithLatency")
	}
	// 10 pushes + 1 pop on the right; the 4-pop batch is one commit and
	// one latency sample on the left; the rejected PushLeft records none.
	if st.Latency.Right.Op.N != 11 {
		t.Fatalf("right op samples = %d, want 11", st.Latency.Right.Op.N)
	}
	if st.Latency.Left.Op.N != 1 {
		t.Fatalf("left op samples = %d, want 1 (one per batch)", st.Latency.Left.Op.N)
	}
}

// TestStatsLatencyAbsentWithoutOption: plain WithTelemetry must not grow
// histograms — the latency surface stays opt-in.
func TestStatsLatencyAbsentWithoutOption(t *testing.T) {
	d := NewArray[int](16, WithTelemetry())
	exercise(t, d)
	st, _ := d.Stats()
	if st.Latency != nil {
		t.Fatal("Stats.Latency present without WithLatency")
	}
}

// TestStatsExported: WithTelemetryName surfaces the deque through the
// text handler and the expvar variable.
func TestStatsExported(t *testing.T) {
	d := NewList[int](WithTelemetryName("exported-test"))
	defer d.CloseTelemetry()
	if err := d.PushRight(7); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	TelemetryHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "exported-test.right.pushes 1") {
		t.Fatalf("handler output missing counter:\n%s", body)
	}
	v := expvar.Get("dcasdeque")
	if v == nil {
		t.Fatal("dcasdeque expvar not published")
	}
	var decoded map[string]struct {
		Telemetry struct {
			Right struct {
				Pushes uint64 `json:"pushes"`
			} `json:"right"`
		} `json:"telemetry"`
	}
	if err := json.Unmarshal([]byte(v.String()), &decoded); err != nil {
		t.Fatalf("expvar JSON: %v", err)
	}
	if decoded["exported-test"].Telemetry.Right.Pushes != 1 {
		t.Fatalf("expvar missing push count: %s", v.String())
	}
}
