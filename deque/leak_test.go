package deque

import (
	"errors"
	"testing"
)

// memDeque is the slice of the API the leak tests need: operations plus
// the occupancy snapshot.
type memDeque interface {
	Deque[int]
	Mem() MemStats
}

// leakBackends builds every backend with telemetry off — Mem must work
// unconditionally, the soak harness depends on it.
func leakBackends(t *testing.T, opts ...Option) map[string]memDeque {
	t.Helper()
	return map[string]memDeque{
		"array":    NewArray[int](256, opts...),
		"list":     NewList[int](opts...),
		"dummy":    NewList[int](append(opts, WithDummyNodes())...),
		"lfrc":     NewList[int](append(opts, WithLFRC())...),
		"gc-mode":  NewList[int](append(opts, WithoutNodeReuse())...),
		"chaselev": NewChaseLev[int](opts...),
		"mutex":    NewMutex[int](256, opts...),
	}
}

// TestNoLeakAcrossCycles drives each backend through N push/pop/recycle
// cycles and asserts the occupancy ledgers balance: every allocated
// element slot was freed (or retired, in gc mode), live counts return
// to baseline, and the conservation invariant holds throughout.
func TestNoLeakAcrossCycles(t *testing.T) {
	const cycles = 5000
	for name, d := range leakBackends(t) {
		t.Run(name, func(t *testing.T) {
			base := d.Mem()
			if err := base.Conserved(); err != nil {
				t.Fatalf("baseline: %v", err)
			}
			for i := 0; i < cycles; i++ {
				// Alternate transit directions where the backend allows it,
				// so both ends' deletion paths run; chaselev is owner-push-
				// right only.
				var perr error
				if i%2 == 0 {
					perr = d.PushRight(i)
				} else {
					perr = d.PushLeft(i)
					if errors.Is(perr, ErrUnsupported) {
						perr = d.PushRight(i)
					}
				}
				if perr != nil {
					t.Fatalf("cycle %d: push: %v", i, perr)
				}
				if _, err := d.PopLeft(); err != nil {
					t.Fatalf("cycle %d: pop: %v", i, err)
				}
			}
			if c, ok := any(d).(interface{ Compact() }); ok {
				c.Compact()
			}
			m := d.Mem()
			if err := m.Conserved(); err != nil {
				t.Fatalf("after %d cycles: %v", cycles, err)
			}
			// Every element slot allocated was released: frees (+ retired,
			// for gc-mode arenas) must equal allocs exactly, with nothing
			// live.
			if m.Slots.Live != 0 {
				t.Fatalf("%d element slots still live after full drain", m.Slots.Live)
			}
			if m.Slots.Frees+m.Slots.Retired != m.Slots.Allocs {
				t.Fatalf("slot ledger leak: allocs %d, frees %d, retired %d",
					m.Slots.Allocs, m.Slots.Frees, m.Slots.Retired)
			}
			if m.Slots.Allocs < cycles {
				t.Fatalf("only %d slot allocs over %d cycles — ledger not counting", m.Slots.Allocs, cycles)
			}
			// The auxiliary node arenas must be back at (or within a couple
			// of deferred deletions of) their post-construction baseline.
			check := func(kind string, b, f *ArenaStats) {
				if b == nil || f == nil {
					return
				}
				if f.Live > b.Live+4 {
					t.Fatalf("%s leak: %d live after drain (baseline %d)", kind, f.Live, b.Live)
				}
				if f.Live >= 0 && uint64(f.Live)+f.Frees+f.Retired != f.Allocs {
					t.Fatalf("%s ledger: live %d + frees %d + retired %d != allocs %d",
						kind, f.Live, f.Frees, f.Retired, f.Allocs)
				}
			}
			check("nodes", base.Nodes, m.Nodes)
			check("lfrc", base.Lfrc, m.Lfrc)
			// High water must reflect the tiny working set, not the cycle
			// count — slots are recycled, not accreted.
			if m.Slots.HighWater > 64 {
				t.Fatalf("slots high water %d for a working set of 1", m.Slots.HighWater)
			}
		})
	}
}

// TestChaseLevRetiredRings forces ring growth and asserts the retired-
// ring ledger agrees with the chain structure: pushing past the initial
// 64-cell ring doubles it repeatedly, each doubling retires exactly one
// ring, and the chain keeps rings == retired + 1 (the live ring).
func TestChaseLevRetiredRings(t *testing.T) {
	d := NewChaseLev[int]()
	const n = 4096
	for i := 0; i < n; i++ {
		if err := d.PushRight(i); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	m := d.Mem()
	if m.Rings == nil {
		t.Fatal("chaselev Mem has no ring stats")
	}
	// 64-cell initial ring, 4096 elements: 64→128→…→4096 is 6 doublings.
	if m.Rings.Retired != 6 {
		t.Fatalf("retired rings = %d after growing 64→%d, want 6", m.Rings.Retired, n)
	}
	if m.Rings.Rings != m.Rings.Retired+1 {
		t.Fatalf("ring ledger: %d rings, %d retired — chain must keep rings == retired+1",
			m.Rings.Rings, m.Rings.Retired)
	}
	if m.Rings.Cells != n {
		t.Fatalf("live ring has %d cells, want %d", m.Rings.Cells, n)
	}
	// Retired rings stay reachable (stale-reader safety): their bytes are
	// part of live occupancy, and must exceed the live ring alone.
	liveRingBytes := uint64(n)*8 + 48
	if m.Rings.Bytes <= liveRingBytes {
		t.Fatalf("ring bytes %d do not include the retired chain (live ring alone is %d)",
			m.Rings.Bytes, liveRingBytes)
	}
	// Drain and re-check conservation end to end.
	for i := 0; i < n; i++ {
		if _, err := d.PopLeft(); err != nil {
			t.Fatalf("drain %d: %v", i, err)
		}
	}
	m = d.Mem()
	if err := m.Conserved(); err != nil {
		t.Fatalf("after drain: %v", err)
	}
	if m.Slots.Live != 0 {
		t.Fatalf("%d slots live after drain", m.Slots.Live)
	}
}

// TestMemoryBoundEnforced exercises WithMemoryBound end to end on each
// backend that supports it: pushes are rejected with ErrMemoryBound
// once live occupancy hits the budget, pops release budget, and pushes
// then succeed again.
func TestMemoryBoundEnforced(t *testing.T) {
	const bound = 8 << 10
	// Bounded backends get capacity beyond what the budget admits, so
	// the bound — not ErrFull — is what stops the fill.
	backends := map[string]memDeque{
		"array":    NewArray[int](4096, WithMemoryBound(bound)),
		"list":     NewList[int](WithMemoryBound(bound)),
		"dummy":    NewList[int](WithMemoryBound(bound), WithDummyNodes()),
		"lfrc":     NewList[int](WithMemoryBound(bound), WithLFRC()),
		"chaselev": NewChaseLev[int](WithMemoryBound(bound)),
		"mutex":    NewMutex[int](4096, WithMemoryBound(bound)),
	}
	for name, d := range backends {
		t.Run(name, func(t *testing.T) {
			pushed := 0
			var berr error
			for i := 0; i < 1<<20; i++ {
				err := d.PushRight(i)
				if err == nil {
					pushed++
					continue
				}
				berr = err
				break
			}
			if !errors.Is(berr, ErrMemoryBound) {
				t.Fatalf("filled to %d pushes, last error %v, want ErrMemoryBound", pushed, berr)
			}
			if pushed == 0 {
				t.Fatal("bound rejected the very first push")
			}
			// Admission is exact except for Chase–Lev ring doublings, which
			// happen inside the core push after admission — occupancy may
			// overshoot by at most the ring that grew, and the next
			// admission rejects.
			m := d.Mem()
			var overshoot uint64
			if m.Rings != nil {
				overshoot = m.Rings.Cells*8 + 48
			}
			if lb := m.LiveBytes(); lb > bound+overshoot {
				t.Fatalf("live bytes %d exceed the %d budget (+%d ring-growth allowance)",
					lb, bound, overshoot)
			}
			// Pops release budget, so pushes must be readmitted before the
			// deque drains completely.  (How many pops that takes varies:
			// the Chase–Lev ring chain never shrinks, so its slots' share
			// of the budget is what remains after the rings' — roughly
			// half.)
			readmitted := false
			for i := 0; i < pushed; i++ {
				if _, err := d.PopLeft(); err != nil {
					t.Fatalf("pop %d: %v", i, err)
				}
				if err := d.PushRight(42); err == nil {
					readmitted = true
					break
				} else if !errors.Is(err, ErrMemoryBound) {
					t.Fatalf("pop %d: push rejected with %v", i, err)
				}
			}
			if !readmitted {
				t.Fatal("bound never readmitted a push even as the deque drained")
			}
		})
	}
}

// TestMemoryBoundCompaction verifies the compact-then-recheck path: a
// list deque whose budget is consumed by deferred-deletion garbage must
// compact its way back under the bound instead of failing.
func TestMemoryBoundCompaction(t *testing.T) {
	// Generous bound first: fill, then drain — pops leave spliced-out
	// nodes awaiting physical deletion.
	d := NewList[int](WithMemoryBound(64 << 10))
	const n = 256
	for i := 0; i < n; i++ {
		if err := d.PushRight(i); err != nil {
			t.Fatalf("push: %v", err)
		}
	}
	for i := 0; i < n; i++ {
		if _, err := d.PopRight(); err != nil {
			t.Fatalf("pop: %v", err)
		}
	}
	before := d.Mem()
	d.Compact()
	after := d.Mem()
	if after.Nodes.Live > before.Nodes.Live {
		t.Fatalf("compaction grew live nodes: %d → %d", before.Nodes.Live, after.Nodes.Live)
	}
	// The deque is empty: pushes must succeed regardless of how much
	// garbage the drain left, because admit() compacts before rejecting.
	for i := 0; i < n; i++ {
		if err := d.PushRight(i); err != nil {
			t.Fatalf("post-drain push %d: %v", i, err)
		}
	}
}
