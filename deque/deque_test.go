package deque

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"testing"
)

// implementations returns fresh instances of every Deque[int]
// implementation at a given capacity, keyed by name.
func implementations(capacity int) map[string]Deque[int] {
	return map[string]Deque[int]{
		"Array":            NewArray[int](capacity),
		"Array/weak":       NewArray[int](capacity, WithoutStrongDCAS()),
		"Array/globalLock": NewArray[int](capacity, WithGlobalLockDCAS()),
		"List":             NewList[int](WithMaxNodes(capacity * 100)),
		"List/gc":          NewList[int](WithoutNodeReuse(), WithMaxNodes(1<<16)),
		"List/eager":       NewList[int](WithEagerDelete()),
		"List/dummy":       NewList[int](WithDummyNodes()),
		"List/lfrc":        NewList[int](WithLFRC()),
		"Mutex":            NewMutex[int](capacity),
	}
}

func TestBasicSemantics(t *testing.T) {
	for name, d := range implementations(8) {
		t.Run(name, func(t *testing.T) {
			if _, err := d.PopLeft(); !errors.Is(err, ErrEmpty) {
				t.Fatalf("popLeft on empty: %v", err)
			}
			if _, err := d.PopRight(); !errors.Is(err, ErrEmpty) {
				t.Fatalf("popRight on empty: %v", err)
			}
			// The Section 2.2 example.
			mustPush(t, d.PushRight, 1)
			mustPush(t, d.PushLeft, 2)
			mustPush(t, d.PushRight, 3)
			if v := mustPop(t, d.PopLeft); v != 2 {
				t.Fatalf("popLeft = %d, want 2", v)
			}
			if v := mustPop(t, d.PopLeft); v != 1 {
				t.Fatalf("popLeft = %d, want 1", v)
			}
			if v := mustPop(t, d.PopRight); v != 3 {
				t.Fatalf("popRight = %d, want 3", v)
			}
		})
	}
}

func mustPush(t *testing.T, f func(int) error, v int) {
	t.Helper()
	if err := f(v); err != nil {
		t.Fatalf("push %d: %v", v, err)
	}
}

func mustPop(t *testing.T, f func() (int, error)) int {
	t.Helper()
	v, err := f()
	if err != nil {
		t.Fatalf("pop: %v", err)
	}
	return v
}

func TestBoundedFull(t *testing.T) {
	for _, name := range []string{"Array", "Mutex"} {
		t.Run(name, func(t *testing.T) {
			var d Deque[int]
			if name == "Array" {
				d = NewArray[int](3)
			} else {
				d = NewMutex[int](3)
			}
			for i := 1; i <= 3; i++ {
				mustPush(t, d.PushRight, i)
			}
			if err := d.PushRight(4); !errors.Is(err, ErrFull) {
				t.Fatalf("push on full: %v", err)
			}
			if err := d.PushLeft(4); !errors.Is(err, ErrFull) {
				t.Fatalf("pushLeft on full: %v", err)
			}
			// Contents unharmed.
			for i := 1; i <= 3; i++ {
				if v := mustPop(t, d.PopLeft); v != i {
					t.Fatalf("popLeft = %d, want %d", v, i)
				}
			}
		})
	}
}

func TestListArenaExhaustion(t *testing.T) {
	d := NewList[int](WithMaxNodes(4))
	pushed := 0
	for i := 0; i < 10; i++ {
		if err := d.PushRight(i); err == nil {
			pushed++
		} else if !errors.Is(err, ErrFull) {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if pushed == 0 || pushed > 4 {
		t.Fatalf("pushed %d items into a 4-node arena", pushed)
	}
	for i := 0; i < pushed; i++ {
		mustPop(t, d.PopLeft)
	}
}

func TestGenericTypes(t *testing.T) {
	// Strings.
	ds := NewList[string]()
	if err := ds.PushRight("hello"); err != nil {
		t.Fatal(err)
	}
	if err := ds.PushLeft("world"); err != nil {
		t.Fatal(err)
	}
	if v, err := ds.PopLeft(); err != nil || v != "world" {
		t.Fatalf("popLeft = (%q, %v)", v, err)
	}
	// Structs with pointers (exercises slot zeroing on free).
	type task struct {
		ID   int
		Data *[]byte
	}
	buf := make([]byte, 8)
	dt := NewArray[task](4)
	if err := dt.PushRight(task{ID: 7, Data: &buf}); err != nil {
		t.Fatal(err)
	}
	got, err := dt.PopRight()
	if err != nil || got.ID != 7 || got.Data != &buf {
		t.Fatalf("PopRight = (%+v, %v)", got, err)
	}
}

// TestCrossImplementationDifferential drives identical random programs
// against every implementation and a plain-slice reference.
func TestCrossImplementationDifferential(t *testing.T) {
	const capacity = 5
	for name, d := range implementations(capacity) {
		t.Run(name, func(t *testing.T) {
			bounded := name == "Array" || name == "Array/weak" ||
				name == "Array/globalLock" || name == "Mutex"
			rng := rand.New(rand.NewPCG(3, 14))
			var ref []int
			next := 1
			for step := 0; step < 4000; step++ {
				switch rng.IntN(4) {
				case 0:
					err := d.PushLeft(next)
					if bounded && len(ref) == capacity {
						if !errors.Is(err, ErrFull) {
							t.Fatalf("step %d: pushLeft on full: %v", step, err)
						}
					} else if err != nil {
						t.Fatalf("step %d: pushLeft: %v", step, err)
					} else {
						ref = append([]int{next}, ref...)
					}
					next++
				case 1:
					err := d.PushRight(next)
					if bounded && len(ref) == capacity {
						if !errors.Is(err, ErrFull) {
							t.Fatalf("step %d: pushRight on full: %v", step, err)
						}
					} else if err != nil {
						t.Fatalf("step %d: pushRight: %v", step, err)
					} else {
						ref = append(ref, next)
					}
					next++
				case 2:
					v, err := d.PopLeft()
					if len(ref) == 0 {
						if !errors.Is(err, ErrEmpty) {
							t.Fatalf("step %d: popLeft on empty: %v", step, err)
						}
					} else if err != nil || v != ref[0] {
						t.Fatalf("step %d: popLeft = (%d, %v), want %d", step, v, err, ref[0])
					} else {
						ref = ref[1:]
					}
				case 3:
					v, err := d.PopRight()
					if len(ref) == 0 {
						if !errors.Is(err, ErrEmpty) {
							t.Fatalf("step %d: popRight on empty: %v", step, err)
						}
					} else if err != nil || v != ref[len(ref)-1] {
						t.Fatalf("step %d: popRight = (%d, %v), want %d", step, v, err, ref[len(ref)-1])
					} else {
						ref = ref[:len(ref)-1]
					}
				}
			}
		})
	}
}

// TestConcurrentConservation checks end-to-end value conservation through
// the public API, including the boxing layer's slot recycling.
func TestConcurrentConservation(t *testing.T) {
	for name, d := range implementations(16) {
		t.Run(name, func(t *testing.T) {
			const (
				pushers = 3
				poppers = 3
				perG    = 2000
				total   = pushers * perG
			)
			var push, pop sync.WaitGroup
			done := make(chan struct{})
			popped := make([][]int, poppers)
			for g := 0; g < pushers; g++ {
				push.Add(1)
				go func(g int) {
					defer push.Done()
					for i := 0; i < perG; i++ {
						v := g*perG + i + 1
						for {
							var err error
							if (g+i)%2 == 0 {
								err = d.PushRight(v)
							} else {
								err = d.PushLeft(v)
							}
							if err == nil {
								break
							}
							runtime.Gosched()
						}
					}
				}(g)
			}
			for g := 0; g < poppers; g++ {
				pop.Add(1)
				go func(g int) {
					defer pop.Done()
					for {
						var v int
						var err error
						if g%2 == 0 {
							v, err = d.PopLeft()
						} else {
							v, err = d.PopRight()
						}
						if err == nil {
							popped[g] = append(popped[g], v)
						} else {
							select {
							case <-done:
								return
							default:
								runtime.Gosched()
							}
						}
					}
				}(g)
			}
			push.Wait()
			close(done)
			pop.Wait()
			var rest []int
			for {
				v, err := d.PopLeft()
				if err != nil {
					break
				}
				rest = append(rest, v)
			}
			seen := make(map[int]int, total)
			for _, batch := range popped {
				for _, v := range batch {
					seen[v]++
				}
			}
			for _, v := range rest {
				seen[v]++
			}
			if len(seen) != total {
				t.Fatalf("distinct values: %d, want %d", len(seen), total)
			}
			for v, c := range seen {
				if c != 1 {
					t.Fatalf("value %d seen %d times", v, c)
				}
			}
		})
	}
}

func TestItemsSnapshot(t *testing.T) {
	a := NewArray[string](4)
	a.PushRight("b")
	a.PushLeft("a")
	a.PushRight("c")
	items, err := a.Items()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(items) != "[a b c]" {
		t.Fatalf("items = %v", items)
	}
	l := NewList[string]()
	l.PushRight("y")
	l.PushLeft("x")
	items, err = l.Items()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(items) != "[x y]" {
		t.Fatalf("items = %v", items)
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewArray[int](0) },
		func() { NewMutex[int](0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("zero-capacity constructor did not panic")
				}
			}()
			f()
		}()
	}
}
