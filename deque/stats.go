package deque

import (
	"net/http"

	"dcasdeque/internal/dcas"
	"dcasdeque/internal/metrics"
	"dcasdeque/internal/telemetry"
)

// WithTelemetry enables per-end operation counters and DCAS contention
// counters for the deque, readable through its Stats method.  Disabled
// (the default) the hot path pays one nil check per operation; enabled,
// counters are sharded and cache-line-padded so recording creates no new
// contention between the two ends.
//
// For the array deque, enabling telemetry also routes DCAS through an
// instrumented provider wrapper, which disables the inlined EndLock fast
// path (operations fall back to interface dispatch).  That is the
// documented cost of attribution; disable telemetry to get it back.
func WithTelemetry() Option {
	return func(c *config) { c.telemetry = true }
}

// WithTelemetryName enables telemetry (as WithTelemetry) and additionally
// registers the deque's counters under name with the process-wide
// exporter: the "dcasdeque" expvar variable and the TelemetryHandler HTTP
// endpoint.  Registering a second deque under the same name replaces the
// first.
func WithTelemetryName(name string) Option {
	return func(c *config) {
		c.telemetry = true
		c.telemetryName = name
	}
}

// WithLatency enables operation-latency histograms on top of the
// counters (implying WithTelemetry): each completed operation's
// duration — entry to the return following its linearization point — is
// recorded into a per-end sharded histogram, and the durations of
// contended operations (those that retried) additionally into a
// separate spin histogram, both readable through Stats().Latency and
// the exporters.  The enabled cost is two monotonic clock reads plus
// one or two sharded histogram records per operation (see EXPERIMENTS.md
// LATOBS for the measured overhead); disabled, the deque never reads
// the clock.
func WithLatency() Option {
	return func(c *config) {
		c.telemetry = true
		c.latency = true
	}
}

// EndStats are one end's operation counters.  Pushes/Pops count
// operations that returned normally; FullHits/EmptyHits count operations
// that observed the boundary, so the end's completed-operation total is
// the sum of all four.  Retries counts operation attempts that lost a
// race and looped.
type EndStats struct {
	Pushes    uint64 `json:"pushes"`
	Pops      uint64 `json:"pops"`
	FullHits  uint64 `json:"full_hits"`
	EmptyHits uint64 `json:"empty_hits"`
	Retries   uint64 `json:"retries"`
	// LogicalDeletes and PhysicalDeletes expose the list deques' two-phase
	// deletion protocol (a pop marks; a later pass splices).  Zero for the
	// array and mutex deques.
	LogicalDeletes  uint64 `json:"logical_deletes"`
	PhysicalDeletes uint64 `json:"physical_deletes"`
	// Grows counts the Chase–Lev deque's circular-array doublings
	// (attributed to the owner's end).  Zero for the fixed-capacity deques.
	Grows uint64 `json:"grows"`
}

// RefStats are the LFRC reference-count transfer totals.  Zero unless the
// deque was built with WithLFRC.
type RefStats struct {
	Incs  uint64 `json:"incs"`
	Decs  uint64 `json:"decs"`
	Frees uint64 `json:"frees"`
}

// DCASStats are the deque's DCAS substrate counters: every double-word
// attempt the deque issued, how many failed, and the backoff work those
// failures caused (spins/yields are zero unless WithBackoff is set).
type DCASStats struct {
	Attempts      uint64 `json:"attempts"`
	Failures      uint64 `json:"failures"`
	Successes     uint64 `json:"successes"`
	BackoffSpins  uint64 `json:"backoff_spins"`
	BackoffYields uint64 `json:"backoff_yields"`
}

// LocationStats attribute DCAS traffic to one shared location word.  ID
// is the location's internal ordering token — stable for the deque's
// lifetime, so two snapshots can be diffed — with 0 identifying the
// overflow bucket (locations beyond the attribution table's capacity).
type LocationStats struct {
	ID       uint64 `json:"id"`
	Attempts uint64 `json:"attempts"`
	Failures uint64 `json:"failures"`
}

// HistogramStats summarize one latency histogram: observation count,
// total, extremes and quantiles, all in nanoseconds.  Quantiles are
// log-linear bucket upper bounds (≤12.5% relative error).
type HistogramStats struct {
	N    uint64 `json:"n"`
	Sum  uint64 `json:"sum"`
	Min  uint64 `json:"min"`
	Max  uint64 `json:"max"`
	P50  uint64 `json:"p50"`
	P90  uint64 `json:"p90"`
	P99  uint64 `json:"p99"`
	P999 uint64 `json:"p999"`
}

// Mean reports the mean observation, or 0 when empty.
func (h HistogramStats) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// EndLatencyStats are one end's latency histograms: Op covers every
// completed operation; Spin covers the contended subpopulation
// (operations that retried at least once).
type EndLatencyStats struct {
	Op   HistogramStats `json:"op"`
	Spin HistogramStats `json:"spin"`
}

// LatencyStats are the deque's per-end latency summaries; present on
// Stats only when the deque was built with WithLatency.
type LatencyStats struct {
	Left  EndLatencyStats `json:"left"`
	Right EndLatencyStats `json:"right"`
}

// Stats is a point-in-time snapshot of a deque's telemetry.  Totals are
// sums over unsynchronized shard reads: exact after quiescence, monotone
// per counter, but a snapshot taken mid-operation may split an
// operation's counters (its Pushes increment visible before its Retries).
type Stats struct {
	Left  EndStats  `json:"left"`
	Right EndStats  `json:"right"`
	Ref   RefStats  `json:"ref"`
	DCAS  DCASStats `json:"dcas"`
	// Locations attribute the DCAS totals per shared word, most-contended
	// ends first discoverable by sorting on Failures.
	Locations []LocationStats `json:"locations,omitempty"`
	// Latency is present only for deques built with WithLatency.
	Latency *LatencyStats `json:"latency,omitempty"`
}

// TelemetryHandler serves every deque registered with WithTelemetryName
// as flat "name.end.counter value" text, one counter per line.  The same
// data is published as the "dcasdeque" expvar variable, so it also
// appears under the standard /debug/vars endpoint.
func TelemetryHandler() http.Handler { return telemetry.Handler() }

// PrometheusHandler serves the same registry in the Prometheus text
// exposition format: counters as *_total families, the WithLatency
// histograms as native `le`-bucketed histograms in seconds plus
// pre-computed quantile gauges.  Mount at /metrics for scraping.
func PrometheusHandler() http.Handler { return telemetry.PrometheusHandler() }

// instruments is the per-deque telemetry state the public wrappers carry
// when telemetry is enabled; nil means disabled.
type instruments struct {
	name       string
	sink       *telemetry.Sink
	dcas       *dcas.AttrStats
	unregister func()
}

// newInstruments builds the enabled-telemetry state: a counter sink
// (with latency histograms attached when requested) and a DCAS
// attribution table.  Exporter registration is deferred to bind, which
// the constructor calls once the deque exists, so the registered entry
// can include the deque's memory snapshotter.
func newInstruments(name string, latency bool) *instruments {
	sink := telemetry.NewSink()
	if latency {
		sink.EnableLatency()
	}
	return &instruments{name: name, sink: sink, dcas: new(dcas.AttrStats)}
}

// bind completes construction: when the deque was named
// (WithTelemetryName), register its sink, DCAS stats and memory
// snapshotter with the process-wide exporter.  nil-safe so constructors
// can call it unconditionally.
func (in *instruments) bind(mem func() telemetry.MemSnapshot) {
	if in == nil || in.name == "" {
		return
	}
	in.unregister = telemetry.Register(in.name, in.sink, &in.dcas.Stats, mem)
}

// stats assembles the public snapshot.
func (in *instruments) stats() Stats {
	sn := in.sink.Snapshot()
	dn := in.dcas.Snapshot()
	st := Stats{
		Left:  EndStats(sn.Left),
		Right: EndStats(sn.Right),
		Ref:   RefStats(sn.Ref),
		DCAS: DCASStats{
			Attempts:      dn.Attempts,
			Failures:      dn.Failures,
			Successes:     dn.Successes,
			BackoffSpins:  dn.BackoffSpins,
			BackoffYields: dn.BackoffYields,
		},
	}
	for _, l := range in.dcas.PerLocation() {
		st.Locations = append(st.Locations, LocationStats(l))
	}
	if sn.Latency != nil {
		st.Latency = &LatencyStats{
			Left:  endLatencyStats(sn.Latency.Left),
			Right: endLatencyStats(sn.Latency.Right),
		}
	}
	return st
}

func endLatencyStats(el telemetry.EndLatency) EndLatencyStats {
	return EndLatencyStats{Op: histogramStats(el.Op), Spin: histogramStats(el.Spin)}
}

func histogramStats(h metrics.HistogramSnapshot) HistogramStats {
	return HistogramStats{
		N: h.N, Sum: h.Sum, Min: h.Min, Max: h.Max,
		P50: h.P50, P90: h.P90, P99: h.P99, P999: h.P999,
	}
}

// close drops the exporter registration, if any.
func (in *instruments) close() {
	if in != nil && in.unregister != nil {
		in.unregister()
	}
}

// instrument wraps the DCAS provider a core will use so every attempt is
// counted and attributed, and attaches the backoff policy's spin/yield
// counters to the same stats block.  It returns the provider to install
// (never nil) and the backoff policy to install (nil stays nil: backoff
// remains opt-in under telemetry).
func (in *instruments) instrument(prov dcas.Provider, bo *dcas.BackoffPolicy) (dcas.Provider, *dcas.BackoffPolicy) {
	if prov == nil {
		prov = dcas.Default()
	}
	prov = dcas.InstrumentedAttr(prov, in.dcas)
	if bo != nil {
		// Clone: the caller's policy may be shared across deques, and this
		// deque's spins must land in this deque's stats.
		b := *bo
		b.Stats = &in.dcas.Stats
		bo = &b
	}
	return prov, bo
}
