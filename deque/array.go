package deque

import (
	"dcasdeque/internal/arena"
	"dcasdeque/internal/core/arraydeque"
	"dcasdeque/internal/dcas"
	"dcasdeque/internal/spec"
)

// Array is the bounded array-based DCAS deque of Section 3, carrying
// elements of type T.  Create with NewArray.  All methods are safe for
// concurrent use.
type Array[T any] struct {
	core  *arraydeque.Deque
	slots *arena.Arena[T]
	bound uint64 // WithMemoryBound budget; 0 = unbounded
	inst  *instruments
}

// NewArray returns an empty array-based deque with the given capacity
// (≥ 1).  Capacity is exact: the deque holds at most capacity elements
// and pushes beyond that return ErrFull.
func NewArray[T any](capacity int, opts ...Option) *Array[T] {
	if capacity < 1 {
		panic("deque: capacity must be ≥ 1")
	}
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	var prov dcas.Provider
	switch {
	case cfg.globalLockDCAS:
		prov = new(dcas.GlobalLock)
	case cfg.endLockDCAS:
		prov = new(dcas.EndLock)
	case cfg.bitLockDCAS:
		prov = new(dcas.BitLock)
	}
	var inst *instruments
	if cfg.telemetry {
		inst = newInstruments(cfg.telemetryName, cfg.latency)
		prov, cfg.backoff = inst.instrument(prov, cfg.backoff)
	}
	coreOpts := []arraydeque.Option{
		arraydeque.WithStrongDCAS(cfg.strongDCAS),
		arraydeque.WithRecheckIndex(cfg.recheckIndex),
		arraydeque.WithPaddedCells(cfg.paddedCells),
		arraydeque.WithBackoff(cfg.backoff),
	}
	if prov != nil {
		coreOpts = append(coreOpts, arraydeque.WithProvider(prov))
	}
	if inst != nil {
		coreOpts = append(coreOpts, arraydeque.WithTelemetry(inst.sink))
	}
	// The slot arena needs headroom beyond capacity: a push allocates its
	// slot before discovering the deque is full, so slots for concurrent
	// losing pushes must exist.  2×capacity+64 makes allocation failure
	// unreachable in practice; if it ever fails the push reports ErrFull.
	d := &Array[T]{
		core:  arraydeque.New(capacity, coreOpts...),
		slots: arena.New[T](2*capacity+64, arena.WithBlockSize(256)),
		bound: cfg.memBound,
		inst:  inst,
	}
	inst.bind(d.memSnapshot)
	return d
}

// Stats returns the deque's telemetry snapshot; ok is false (and the
// snapshot zero) unless the deque was built with WithTelemetry or
// WithTelemetryName.
func (d *Array[T]) Stats() (Stats, bool) {
	if d.inst == nil {
		return Stats{}, false
	}
	return d.inst.stats(), true
}

// CloseTelemetry removes the deque from the process-wide exporter if it
// was registered with WithTelemetryName.  Stats keeps working; only the
// exporter entry is dropped.  Safe to call regardless of configuration.
func (d *Array[T]) CloseTelemetry() { d.inst.close() }

// Cap reports the deque's capacity.
func (d *Array[T]) Cap() int { return d.core.Cap() }

// box stores v in a fresh slot and returns its non-zero handle word.
func (d *Array[T]) box(v T) (uint64, bool) {
	idx, ok := d.slots.Alloc()
	if !ok {
		return 0, false
	}
	*d.slots.Get(idx) = v
	return d.slots.Handle(idx), true
}

// unbox retrieves and releases the slot behind a popped handle.
func (d *Array[T]) unbox(h uint64) T {
	idx, ok := d.slots.Resolve(h)
	if !ok {
		panic("deque: popped handle does not resolve (corrupt state)")
	}
	p := d.slots.Get(idx)
	v := *p
	var zero T
	*p = zero // do not retain references in recycled slots
	d.slots.Free(idx)
	return v
}

// PushLeft implements Deque.
func (d *Array[T]) PushLeft(v T) error {
	if err := d.admit(); err != nil {
		return err
	}
	h, ok := d.box(v)
	if !ok {
		return ErrFull
	}
	if d.core.PushLeft(h) == spec.Full {
		d.releaseUnpushed(h)
		return ErrFull
	}
	return nil
}

// PushRight implements Deque.
func (d *Array[T]) PushRight(v T) error {
	if err := d.admit(); err != nil {
		return err
	}
	h, ok := d.box(v)
	if !ok {
		return ErrFull
	}
	if d.core.PushRight(h) == spec.Full {
		d.releaseUnpushed(h)
		return ErrFull
	}
	return nil
}

// releaseUnpushed frees the slot of a handle that never entered the deque.
func (d *Array[T]) releaseUnpushed(h uint64) {
	idx, ok := d.slots.Resolve(h)
	if !ok {
		panic("deque: unpushed handle does not resolve")
	}
	var zero T
	*d.slots.Get(idx) = zero
	d.slots.Free(idx)
}

// PopLeft implements Deque.
func (d *Array[T]) PopLeft() (T, error) {
	h, r := d.core.PopLeft()
	if r == spec.Empty {
		var zero T
		return zero, ErrEmpty
	}
	return d.unbox(h), nil
}

// PopRight implements Deque.
func (d *Array[T]) PopRight() (T, error) {
	h, r := d.core.PopRight()
	if r == spec.Empty {
		var zero T
		return zero, ErrEmpty
	}
	return d.unbox(h), nil
}

// Items returns the deque's contents left to right.  It must only be
// called while no operations are in flight (tests, diagnostics).
func (d *Array[T]) Items() ([]T, error) {
	hs, err := d.core.Items()
	if err != nil {
		return nil, err
	}
	out := make([]T, 0, len(hs))
	for _, h := range hs {
		idx, ok := d.slots.Resolve(h)
		if !ok {
			panic("deque: stored handle does not resolve")
		}
		out = append(out, *d.slots.Get(idx))
	}
	return out, nil
}

var _ Deque[int] = (*Array[int])(nil)
