// Package deque is the public API of this library: linearizable,
// non-blocking double-ended queues based on the double-compare-and-swap
// (DCAS) algorithms of "DCAS-Based Concurrent Deques" (Agesen, Detlefs,
// Flood, Garthwaite, Martin, Moir, Shavit, Steele — SPAA 2000).
//
// Two implementations are provided, mirroring the paper's two algorithms:
//
//   - Array (NewArray): the bounded, array-based deque of Section 3.
//     Fixed capacity, no per-operation allocation, returns ErrFull at
//     capacity.
//   - List (NewList): the unbounded, linked-list-based deque of Section 4.
//     Nodes come from an internal lock-free arena; pushes fail with
//     ErrFull only if that arena is exhausted (the paper's
//     allocator-failure case).
//
// Both allow uninterrupted concurrent access to the two ends: operations
// on opposite ends of a non-boundary deque synchronize on disjoint memory
// and proceed in parallel.  A mutex-based baseline (NewMutex) with the
// same interface is included for comparison.
//
// DCAS does not exist in shipping hardware; the implementations run on a
// software DCAS emulation (see internal/dcas).  The deque algorithms
// themselves are lock-free above that substrate, exactly as published.
//
// Elements of any type T are boxed through an internal slot arena so the
// core algorithms can operate on single-word handles; the arena is
// lock-free, so the end-to-end operations add no locking beyond the DCAS
// emulation itself.
package deque

import (
	"errors"

	"dcasdeque/internal/dcas"
)

// Errors returned by deque operations, mirroring the sequential
// specification's "empty" and "full" responses (Section 2.2).
var (
	// ErrEmpty is returned by Pop operations on an empty deque.
	ErrEmpty = errors.New("deque: empty")
	// ErrFull is returned by Push operations on a full deque (Array) or
	// when the node/slot arena is exhausted (List).
	ErrFull = errors.New("deque: full")
	// ErrUnsupported is returned by operations an implementation does not
	// provide: the Chase–Lev deque's PushLeft (the algorithm is
	// single-ended-push — see NewChaseLev).  Callers that need both push
	// ends must pick a DCAS backend.
	ErrUnsupported = errors.New("deque: operation not supported by this implementation")
	// ErrMemoryBound is returned by Push operations that would exceed the
	// deque's WithMemoryBound budget after compaction failed to make room.
	// Unlike ErrFull it signals a policy limit, not structural capacity:
	// the deque keeps working and pushes succeed again once pops release
	// enough live memory.
	ErrMemoryBound = errors.New("deque: memory bound exceeded")
)

// Deque is a linearizable double-ended queue of elements of type T.
// Implementations in this package are safe for unrestricted concurrent
// use by any number of goroutines on both ends.
type Deque[T any] interface {
	// PushLeft prepends v; it returns ErrFull if the deque is full.
	PushLeft(v T) error
	// PushRight appends v; it returns ErrFull if the deque is full.
	PushRight(v T) error
	// PopLeft removes and returns the leftmost element; it returns
	// ErrEmpty if the deque is empty.
	PopLeft() (T, error)
	// PopRight removes and returns the rightmost element; it returns
	// ErrEmpty if the deque is empty.
	PopRight() (T, error)
	// PopLMany removes up to max elements from the left end and returns
	// them in pop order (leftmost first); nil when the deque is empty or
	// max ≤ 0.  The batch is a sequence of independent PopLeft
	// operations — not an atomic multi-pop — that pays the wrapper,
	// dispatch and telemetry costs once per call instead of once per
	// element.  Work-stealing thieves use it to take several tasks from
	// a victim in one call.
	PopLMany(max int) []T
	// PopRMany is PopLMany for the right end (rightmost first).
	PopRMany(max int) []T
}

// Option configures a deque constructor.
type Option func(*config)

type config struct {
	globalLockDCAS bool
	bitLockDCAS    bool
	endLockDCAS    bool
	strongDCAS     bool
	recheckIndex   bool
	nodeReuse      bool
	eagerDelete    bool
	dummyNodes     bool
	lfrc           bool
	paddedCells    bool
	maxNodes       int
	memBound       uint64
	backoff        *dcas.BackoffPolicy
	telemetry      bool
	telemetryName  string
	latency        bool
}

func defaultConfig() config {
	return config{
		strongDCAS:   true,
		recheckIndex: true,
		nodeReuse:    true,
		maxNodes:     1 << 20,
	}
}

// WithGlobalLockDCAS selects the coarse global-mutex DCAS emulation
// instead of the default fine-grained two-location emulation.  All DCAS
// operations on the deque then serialize; useful only for measurement.
func WithGlobalLockDCAS() Option {
	return func(c *config) { c.globalLockDCAS = true }
}

// WithBitLockDCAS selects the bit-table DCAS emulation: all locations
// share a single 64-bit lock word and a DCAS acquires both of its
// locations' bits in one CAS.  It halves the locked read-modify-write
// operations per DCAS versus the default per-location spinlocks, which is
// the dominant cost at low core counts, at the price of coarsening the
// lock space to 64 bits (about one accidental collision per 16 concurrent
// pairs).  Ignored for LFRC deques, whose reference-count words require
// the per-location emulation.
func WithBitLockDCAS() Option {
	return func(c *config) { c.bitLockDCAS = true }
}

// WithEndLockDCAS selects the anchored in-word DCAS emulation for the
// array deque: a DCAS validates and locks the end index with one CAS of
// the index word itself (marking its spare top bit), arbitrates the cell
// with a second CAS, and commits with one store — three locked
// read-modify-writes per DCAS, against four for the bit-table emulation
// and six for the lock-pair ones.  It is the fastest substrate this
// library has on the contended two-ends workload.
//
// The emulation requires that one location of every DCAS pair is an
// always-anchor word with a spare bit, which only the array deque's
// (end, cell) pairs provide; list deques fall back to the bit-table
// emulation (LFRC to the per-location one, as with WithBitLockDCAS).
func WithEndLockDCAS() Option {
	return func(c *config) { c.endLockDCAS = true }
}

// BackoffConfig tunes the bounded exponential backoff applied after a
// failed operation attempt.  The zero value selects the library default
// (spin briefly then yield; yield immediately when GOMAXPROCS is 1).
type BackoffConfig struct {
	// MinSpins is the initial spin bound; the bound doubles after each
	// failed attempt.
	MinSpins int
	// MaxSpins caps the growing spin bound; beyond it the operation yields
	// the processor instead of spinning.
	MaxSpins int
}

// WithBackoff enables per-goroutine bounded exponential backoff with
// jitter on the deque operations' DCAS-retry loops.  Without it a failed
// attempt retries immediately, re-contending the very locations that just
// caused the failure.
func WithBackoff(cfg BackoffConfig) Option {
	return func(c *config) {
		if cfg == (BackoffConfig{}) {
			c.backoff = dcas.DefaultBackoff()
			return
		}
		c.backoff = &dcas.BackoffPolicy{
			MinSpins: uint32(cfg.MinSpins),
			MaxSpins: uint32(cfg.MaxSpins),
		}
	}
}

// WithPaddedCells spaces the array deque's cells so no two logical cells
// share a false-sharing range, at the cost of 8× the array storage.  No
// effect on the list deques, which already keep their always-hot sentinel
// words on separate cache lines.
func WithPaddedCells() Option {
	return func(c *config) { c.paddedCells = true }
}

// WithoutStrongDCAS restricts the array deque to the weak (boolean) form
// of DCAS, eliding the optional early-return optimization of lines 17–18
// of the paper's Figures 2/3/30/31.  No effect on the list deque.
func WithoutStrongDCAS() Option {
	return func(c *config) { c.strongDCAS = false }
}

// WithoutIndexRecheck elides the optional line-7 index re-read of the
// array algorithm.  No effect on the list deque.
func WithoutIndexRecheck() Option {
	return func(c *config) { c.recheckIndex = false }
}

// WithoutNodeReuse puts the list deque's node arena in gc mode: node
// storage is never recycled during the deque's lifetime, matching the
// paper's garbage-collection assumption exactly (at the cost of memory
// growth proportional to total pushes).  No effect on the array deque.
func WithoutNodeReuse() Option {
	return func(c *config) { c.nodeReuse = false }
}

// WithEagerDelete makes list-deque pops complete their physical deletion
// before returning (the paper's footnote 6 variant) instead of leaving it
// to the next operation on that side.  No effect on the array deque.
func WithEagerDelete() Option {
	return func(c *config) { c.eagerDelete = true }
}

// WithMaxNodes bounds the list and Chase–Lev deques' element arenas
// (default 1<<20 live elements).  No effect on the array deque.
func WithMaxNodes(n int) Option {
	return func(c *config) { c.maxNodes = n }
}

// WithMemoryBound enforces a hard per-deque budget of bytes on live
// memory: element slots plus the backend's auxiliary structures (list
// nodes, LFRC objects, or the Chase–Lev ring chain), as reported by Mem.
// A push that would exceed the budget first attempts compaction
// (completing the list deques' deferred physical deletions, which frees
// spliced-out nodes and retired dummies), and fails with ErrMemoryBound
// only if the deque is still over budget — so a bounded deque degrades
// into backpressure, not unbounded growth.  Bytes ≤ 0 disables the bound
// (the default).  The budget covers live occupancy, not retained slabs:
// arena slabs are never returned to the OS during a deque's lifetime, so
// the bound caps what the high-water footprint can grow to.
//
// The bound is a policy limit checked at admission, so it is exact up to
// concurrency (each in-flight push can overshoot by one element's bytes)
// and, on the Chase–Lev backend, up to one ring doubling — ring growth
// happens inside the core push after admission and is charged at the
// next one.
func WithMemoryBound(bytes int64) Option {
	return func(c *config) {
		if bytes > 0 {
			c.memBound = uint64(bytes)
		}
	}
}
