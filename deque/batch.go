package deque

import "dcasdeque/internal/telemetry"

// popManyChunk bounds the handle buffer a batch pop allocates, so a
// caller passing a huge max (e.g. "drain everything") does not force a
// proportionally huge allocation; the drain loops in chunks instead.
const popManyChunk = 256

// popMany implements the PopLMany/PopRMany contract over a core-level
// batch pop and the implementation's unboxer: transfer up to max
// handles, unbox each, stop early at empty.
func popMany[T any](max int, pop func([]uint64) int, unbox func(uint64) T) []T {
	if max <= 0 {
		return nil
	}
	var out []T
	buf := make([]uint64, min(max, popManyChunk))
	for len(out) < max {
		want := min(max-len(out), len(buf))
		n := pop(buf[:want])
		if n == 0 {
			break
		}
		if out == nil {
			out = make([]T, 0, n)
		}
		for _, h := range buf[:n] {
			out = append(out, unbox(h))
		}
		if n < want {
			break // the deque went empty mid-chunk
		}
	}
	return out
}

// PopLMany implements Deque.
func (d *Array[T]) PopLMany(max int) []T {
	return popMany(max, d.core.PopLeftMany, d.unbox)
}

// PopRMany implements Deque.
func (d *Array[T]) PopRMany(max int) []T {
	return popMany(max, d.core.PopRightMany, d.unbox)
}

// PopLMany implements Deque.
func (d *List[T]) PopLMany(max int) []T {
	return popMany(max, d.core.PopLeftMany, d.unbox)
}

// PopRMany implements Deque.
func (d *List[T]) PopRMany(max int) []T {
	return popMany(max, d.core.PopRightMany, d.unbox)
}

// PopLMany implements Deque.  The mutex baseline takes the lock once
// per chunk rather than once per element; telemetry is likewise batched
// (one Add per chunk covering n pops).
func (d *Mutex[T]) PopLMany(max int) []T {
	return popMany(max, d.batched(telemetry.Left, d.core.PopLeftMany), d.unbox)
}

// PopRMany implements Deque.
func (d *Mutex[T]) PopRMany(max int) []T {
	return popMany(max, d.batched(telemetry.Right, d.core.PopRightMany), d.unbox)
}

// batched wraps a core batch pop so each chunk's pop count lands in the
// telemetry sink with a single Add.
func (d *Mutex[T]) batched(end telemetry.End, pop func([]uint64) int) func([]uint64) int {
	if d.inst == nil {
		return pop
	}
	return func(out []uint64) int {
		n := pop(out)
		if n > 0 {
			d.inst.sink.Add(end, telemetry.Pops, uint64(n))
		}
		return n
	}
}
