package deque

import "dcasdeque/internal/telemetry"

// popManyChunk bounds the handle buffer a batch pop allocates, so a
// caller passing a huge max (e.g. "drain everything") does not force a
// proportionally huge allocation; the drain loops in chunks instead.
const popManyChunk = 256

// popMany implements the PopLMany/PopRMany contract over a core-level
// batch pop and the implementation's unboxer: transfer up to max
// handles, unbox each, stop early at empty.
func popMany[T any](max int, pop func([]uint64) int, unbox func(uint64) T) []T {
	if max <= 0 {
		return nil
	}
	var out []T
	buf := make([]uint64, min(max, popManyChunk))
	for len(out) < max {
		want := min(max-len(out), len(buf))
		n := pop(buf[:want])
		if n == 0 {
			break
		}
		if out == nil {
			out = make([]T, 0, n)
		}
		for _, h := range buf[:n] {
			out = append(out, unbox(h))
		}
		if n < want {
			break // the deque went empty mid-chunk
		}
	}
	return out
}

// PopLMany implements Deque.
func (d *Array[T]) PopLMany(max int) []T {
	return popMany(max, d.core.PopLeftMany, d.unbox)
}

// PopRMany implements Deque.
func (d *Array[T]) PopRMany(max int) []T {
	return popMany(max, d.core.PopRightMany, d.unbox)
}

// PopLMany implements Deque.
func (d *List[T]) PopLMany(max int) []T {
	return popMany(max, d.core.PopLeftMany, d.unbox)
}

// PopRMany implements Deque.
func (d *List[T]) PopRMany(max int) []T {
	return popMany(max, d.core.PopRightMany, d.unbox)
}

// PopLMany implements Deque.  The whole batch drains under a single
// lock hold: the handle buffer is sized at min(max, Cap()) — capacity
// bounds what any one drain can return — so the core is entered exactly
// once however large max is.  (The previous implementation chunked
// through popMany and re-acquired the lock once per 256 handles, which
// understated the baseline in the batched-stealing comparisons.)
func (d *Mutex[T]) PopLMany(max int) []T {
	return d.drain(max, telemetry.Left, d.core.PopLeftMany)
}

// PopRMany implements Deque.  Like PopLMany: one lock hold per call.
func (d *Mutex[T]) PopRMany(max int) []T {
	return d.drain(max, telemetry.Right, d.core.PopRightMany)
}

// drain runs one single-lock-hold batch pop and unboxes the results;
// telemetry is batched as one Add covering all n pops.
func (d *Mutex[T]) drain(max int, end telemetry.End, pop func([]uint64) int) []T {
	if max <= 0 {
		return nil
	}
	buf := make([]uint64, min(max, d.core.Cap()))
	n := pop(buf)
	if n == 0 {
		return nil
	}
	if d.inst != nil {
		d.inst.sink.Add(end, telemetry.Pops, uint64(n))
	}
	out := make([]T, n)
	for i, h := range buf[:n] {
		out[i] = d.unbox(h)
	}
	return out
}
