package deque

import (
	"sync"
	"testing"
)

// hammer drives a deque from both ends concurrently and checks the popped
// multiset matches the pushed one.
func hammer(t *testing.T, d Deque[int]) {
	t.Helper()
	const workers = 4
	const perWorker = 2000
	var wg sync.WaitGroup
	popped := make([]map[int]int, workers)
	for w := 0; w < workers; w++ {
		w := w
		popped[w] = make(map[int]int)
		wg.Add(1)
		go func() {
			defer wg.Done()
			left := w%2 == 0
			for i := 0; i < perWorker; i++ {
				v := w*perWorker + i + 1
				for {
					var err error
					if left {
						err = d.PushLeft(v)
					} else {
						err = d.PushRight(v)
					}
					if err == nil {
						break
					}
				}
				for {
					var got int
					var err error
					if left {
						got, err = d.PopRight()
					} else {
						got, err = d.PopLeft()
					}
					if err == nil {
						popped[w][got]++
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	total := 0
	for _, m := range popped {
		for _, n := range m {
			total += n
		}
	}
	if total != workers*perWorker {
		t.Fatalf("popped %d values, want %d", total, workers*perWorker)
	}
}

// TestEngineeredOptions exercises the contention-engineering options —
// bit-table DCAS, padded cells, and retry backoff — through the public
// constructors under concurrent load.
func TestEngineeredOptions(t *testing.T) {
	t.Run("ArrayBitLockPaddedBackoff", func(t *testing.T) {
		hammer(t, NewArray[int](64,
			WithBitLockDCAS(), WithPaddedCells(), WithBackoff(BackoffConfig{})))
	})
	t.Run("ArrayEndLockBackoff", func(t *testing.T) {
		hammer(t, NewArray[int](64, WithEndLockDCAS(), WithBackoff(BackoffConfig{})))
	})
	t.Run("ListEndLockFallsBackToBitLock", func(t *testing.T) {
		// List deques cannot satisfy EndLock's anchored-pair contract; the
		// option must degrade to the bit-table emulation, not misbehave.
		hammer(t, NewList[int](WithEndLockDCAS(), WithBackoff(BackoffConfig{})))
	})
	t.Run("ArrayExplicitBackoff", func(t *testing.T) {
		hammer(t, NewArray[int](64,
			WithBackoff(BackoffConfig{MinSpins: 4, MaxSpins: 256})))
	})
	t.Run("ListBitLockBackoff", func(t *testing.T) {
		hammer(t, NewList[int](WithBitLockDCAS(), WithBackoff(BackoffConfig{})))
	})
	t.Run("ListDummyBitLockBackoff", func(t *testing.T) {
		hammer(t, NewList[int](WithDummyNodes(), WithBitLockDCAS(),
			WithBackoff(BackoffConfig{})))
	})
	t.Run("ListLFRCBackoff", func(t *testing.T) {
		// WithBitLockDCAS must be ignored for LFRC (reference counts need
		// the per-location emulation); the combination must still be safe.
		hammer(t, NewList[int](WithLFRC(), WithBitLockDCAS(),
			WithBackoff(BackoffConfig{})))
	})
}
