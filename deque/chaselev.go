package deque

import (
	"dcasdeque/internal/arena"
	"dcasdeque/internal/core/chaselev"
	"dcasdeque/internal/spec"
)

// ChaseLev is the native single-CAS work-stealing deque of Chase & Lev
// ("Dynamic Circular Work-Stealing Deque", SPAA 2005), carrying elements
// of type T.  Create with NewChaseLev.  Unlike the DCAS deques it needs
// no DCAS emulation at all: the owner's end runs on plain atomic stores
// and loads, and steals commit with one CompareAndSwap on a single top
// word — which makes it the fast backend for the owner-LIFO/thief-FIFO
// access pattern of a work-stealing scheduler (sched.WithChaseLev).
//
// The trade against the paper-faithful deques is generality:
//
//   - Chase–Lev is single-ended-push.  The owner end is mapped to
//     PushRight/PopRight and the steal end to PopLeft/PopLMany, matching
//     how sched already orients its deques (owner right, thieves left);
//     PushLeft returns ErrUnsupported.
//   - PushRight and PopRight are OWNER-ONLY: at most one goroutine may
//     use the right end (concurrent right-end calls race by design —
//     the algorithm's whole speedup comes from the owner not
//     synchronizing).  PopLeft and PopLMany are safe for any number of
//     goroutines.
//
// Storage grows: the circular array doubles when full and pushes only
// fail when the slot arena is exhausted (the maxNodes bound, as for
// List).  Retired arrays are kept reachable until the deque dies, so
// stale readers stay safe — the same no-recycling retirement discipline
// as the node arena's gc mode.
type ChaseLev[T any] struct {
	core  *chaselev.Deque
	slots *arena.Arena[T]
	bound uint64 // WithMemoryBound budget; 0 = unbounded
	inst  *instruments
}

// NewChaseLev returns an empty Chase–Lev work-stealing deque.  It is
// unbounded up to the arena's maxNodes bound (default 1<<20, settable
// with WithMaxNodes).  The telemetry, backoff and max-nodes options
// apply; the DCAS-emulation and algorithm-variant options are
// meaningless for this backend and are ignored.
func NewChaseLev[T any](opts ...Option) *ChaseLev[T] {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	var inst *instruments
	if cfg.telemetry {
		inst = newInstruments(cfg.telemetryName, cfg.latency)
		if cfg.backoff != nil {
			// Clone so this deque's backoff spins land in this deque's
			// stats (the policy may be shared across deques).  There is no
			// DCAS provider to instrument; the DCAS counters stay zero.
			b := *cfg.backoff
			b.Stats = &inst.dcas.Stats
			cfg.backoff = &b
		}
	}
	coreOpts := []chaselev.Option{chaselev.WithBackoff(cfg.backoff)}
	if inst != nil {
		coreOpts = append(coreOpts, chaselev.WithTelemetry(inst.sink))
	}
	d := &ChaseLev[T]{
		core:  chaselev.New(coreOpts...),
		slots: arena.New[T](cfg.maxNodes, arena.WithBlockSize(256)),
		bound: cfg.memBound,
		inst:  inst,
	}
	inst.bind(d.memSnapshot)
	return d
}

// Stats returns the deque's telemetry snapshot; ok is false (and the
// snapshot zero) unless the deque was built with WithTelemetry or
// WithTelemetryName.  The DCAS block is always zero for this backend —
// there is no emulation underneath; the end counters carry the
// take/steal/empty traffic and Right.Grows the array doublings.
func (d *ChaseLev[T]) Stats() (Stats, bool) {
	if d.inst == nil {
		return Stats{}, false
	}
	return d.inst.stats(), true
}

// CloseTelemetry removes the deque from the process-wide exporter if it
// was registered with WithTelemetryName.  Stats keeps working; only the
// exporter entry is dropped.  Safe to call regardless of configuration.
func (d *ChaseLev[T]) CloseTelemetry() { d.inst.close() }

// Cap reports the slot-arena bound: the most elements the deque can
// hold before pushes fail with ErrFull.
func (d *ChaseLev[T]) Cap() int { return d.slots.Cap() }

// box stores v in a fresh slot and returns its non-zero handle word.
func (d *ChaseLev[T]) box(v T) (uint64, bool) {
	idx, ok := d.slots.Alloc()
	if !ok {
		return 0, false
	}
	*d.slots.Get(idx) = v
	return d.slots.Handle(idx), true
}

// unbox retrieves and releases the slot behind a popped handle.
func (d *ChaseLev[T]) unbox(h uint64) T {
	idx, ok := d.slots.Resolve(h)
	if !ok {
		panic("deque: popped handle does not resolve (corrupt state)")
	}
	p := d.slots.Get(idx)
	v := *p
	var zero T
	*p = zero // do not retain references in recycled slots
	d.slots.Free(idx)
	return v
}

// PushLeft implements Deque.  Chase–Lev has no left push (the paper's
// deque is single-ended-push); it always returns ErrUnsupported without
// touching the deque.
func (d *ChaseLev[T]) PushLeft(v T) error { return ErrUnsupported }

// PushRight implements Deque.  OWNER-ONLY: see the type comment.  It
// fails only when the slot arena is exhausted (ErrFull) or the memory
// bound rejects it (ErrMemoryBound).
func (d *ChaseLev[T]) PushRight(v T) error {
	if err := d.admit(); err != nil {
		return err
	}
	h, ok := d.box(v)
	if !ok {
		return ErrFull
	}
	d.core.PushRight(h) // cannot fail: the array grows
	return nil
}

// PopLeft implements Deque: one steal.  Safe for any goroutine.
func (d *ChaseLev[T]) PopLeft() (T, error) {
	h, r := d.core.PopLeft()
	if r == spec.Empty {
		var zero T
		return zero, ErrEmpty
	}
	return d.unbox(h), nil
}

// PopRight implements Deque.  OWNER-ONLY: see the type comment.
func (d *ChaseLev[T]) PopRight() (T, error) {
	h, r := d.core.PopRight()
	if r == spec.Empty {
		var zero T
		return zero, ErrEmpty
	}
	return d.unbox(h), nil
}

// PopLMany implements Deque, strengthening its contract: each core
// claim takes a whole run of up to chaselev.DefaultSpan elements in ONE
// CompareAndSwap — an atomic multi-steal, not a loop of single-element
// windows — so a thief taking max ≤ 32 tasks pays exactly one RMW.
// Larger batches chain span-sized claims until max is reached or the
// deque is observed empty.  Safe for any goroutine.
func (d *ChaseLev[T]) PopLMany(max int) []T {
	return popMany(max, func(out []uint64) int {
		n := 0
		for n < len(out) {
			k := d.core.PopLeftMany(out[n:])
			if k == 0 {
				break
			}
			n += k
		}
		return n
	}, d.unbox)
}

// PopRMany implements Deque.  OWNER-ONLY: a batch of owner pops.
func (d *ChaseLev[T]) PopRMany(max int) []T {
	return popMany(max, d.core.PopRightMany, d.unbox)
}

// Items returns the deque's contents left to right.  It must only be
// called while no operations are in flight (tests, diagnostics).
func (d *ChaseLev[T]) Items() ([]T, error) {
	hs, err := d.core.Items()
	if err != nil {
		return nil, err
	}
	out := make([]T, 0, len(hs))
	for _, h := range hs {
		idx, ok := d.slots.Resolve(h)
		if !ok {
			panic("deque: stored handle does not resolve")
		}
		out = append(out, *d.slots.Get(idx))
	}
	return out, nil
}

var _ Deque[int] = (*ChaseLev[int])(nil)
